"""Shard: spread a file across multiple Dropboxes, k-of-N (§9.3).

    "It takes as input a file, a number of shards N to create, and a
    minimum number necessary to reconstruct the file, 1 <= k <= N ...
    Shard then deploys these shards by invoking the Dropbox function on
    other machines."

The uploaded source embeds a GF(256) encoder *identical in layout* to
:mod:`repro.coding.erasure` (systematic stripes + Vandermonde parity), so
the host-side helper can reconstruct with the fast numpy decoder.  The
Dropbox source and manifest arrive as invocation arguments — composition
without baking one function's code into another's.
"""

from __future__ import annotations

import json

from repro.coding.erasure import Shard, decode_shards
from repro.core.manifest import FunctionManifest
from repro.functions.dropbox import DropboxFunction
from repro.netsim.simulator import Actor, blocking
from repro.obs.span import TRACER as _obs

MB = 1024 * 1024

SHARD_SOURCE = r'''
import json

_EXP = [0] * 512
_LOG = [0] * 256
_v = 1
for _i in range(255):
    _EXP[_i] = _v
    _LOG[_v] = _i
    _d = _v << 1
    if _d & 0x100:
        _d ^= 0x11B
    _v = _d ^ _v
for _i in range(255, 512):
    _EXP[_i] = _EXP[_i - 255]

def _gf_pow(a, n):
    if n == 0:
        return 1
    if a == 0:
        return 0
    return _EXP[(_LOG[a] * n) % 255]

def _encode(data, n, k):
    if k == 1:
        return [bytes(data) for _ in range(n)]
    stripe_len = (len(data) + k - 1) // k if data else 1
    padded = data + b"\x00" * (k * stripe_len - len(data))
    stripes = [padded[i * stripe_len:(i + 1) * stripe_len] for i in range(k)]
    shards = list(stripes)
    for index in range(k, n):
        a = index - k + 2
        acc = bytearray(stripe_len)
        for j in range(k):
            c = _gf_pow(a, j)
            if c == 0:
                continue
            lc = _LOG[c]
            stripe = stripes[j]
            for pos in range(stripe_len):
                b = stripe[pos]
                if b:
                    acc[pos] ^= _EXP[lc + _LOG[b]]
        shards.append(bytes(acc))
    return shards

def shard(n, k, dropbox_source, dropbox_manifest, name, expiry_s):
    data = yield from api.recv(timeout=120.0)
    yield from api.log("shard: %d bytes -> %d-of-%d" % (len(data), k, n))
    pieces = _encode(data, n, k)
    placements = []
    used_boxes = []
    for index, piece in enumerate(pieces):
        handle = yield from api.deploy(dropbox_source, dropbox_manifest,
                                       exclude_fingerprints=used_boxes)
        info = yield from api.remote_info(handle)
        used_boxes.append(info["box_fp"])
        # Start the dropbox loop, then PUT this piece.
        yield from api.remote_invoke_nowait(
            handle, [len(piece) + 1024, 1000, expiry_s])
        yield from api.remote_send(handle, json.dumps(
            {"op": "put", "name": name + "." + str(index)}).encode("utf-8"))
        yield from api.remote_send(handle, piece)
        ack = yield from api.remote_recv(handle, timeout=120.0)
        if b"true" not in ack:
            yield from api.log("shard: put failed on " + info["box_nickname"])
        placements.append({"index": index,
                           "box_fp": info["box_fp"],
                           "box_nickname": info["box_nickname"],
                           "invocation": info["invocation"],
                           "name": name + "." + str(index)})
    return {"n": n, "k": k, "length": len(data), "placements": placements}
'''


class ShardFunction:
    """Host-side helper: deploy Shard, feed it a file, fetch + decode."""

    SOURCE = SHARD_SOURCE
    API_CALLS = frozenset({"send", "recv", "log", "deploy",
                           "remote_invoke", "remote_send", "remote_recv",
                           "remote_shutdown"})

    @classmethod
    def manifest(cls, image: str = "python",
                 memory_bytes: int = 8 * MB) -> FunctionManifest:
        """The manifest this function ships with."""
        return FunctionManifest.create(
            name="shard", entry="shard", api_calls=cls.API_CALLS,
            image=image, memory_bytes=memory_bytes)

    @staticmethod
    @blocking
    def scatter(thread: Actor, session, data: bytes, n: int, k: int,
                name: str = "file", expiry_s: float = 3600.0,
                timeout: float = 1200.0) -> dict:
        """Run the full scatter: returns the placement metadata."""
        from repro.core import messages

        sim = session.client.sim
        log = _obs.log
        span = log.begin_span(
            "functions.shard_scatter", sim.now, track=session.box.nickname,
            n=n, k=k, bytes=len(data)) if log is not None else None
        dropbox_manifest = DropboxFunction.manifest(image="python").to_wire()
        session.framed.send_frame(messages.encode_message(
            messages.INVOKE, token=session.invocation_token,
            args=[n, k, DropboxFunction.SOURCE, dropbox_manifest, name,
                  expiry_s]))
        session.send_message(data)
        done = yield from session.await_message(thread, messages.DONE, timeout)
        result = done["result"]
        if span is not None:
            span.end(sim.now, placements=len(result["placements"]))
        return result

    @staticmethod
    @blocking
    def gather(thread: Actor, bento_client, metadata: dict,
               use_indices: list[int] | None = None,
               timeout: float = 600.0) -> bytes:
        """Fetch any k shards straight from their Dropboxes and decode.

        ``use_indices`` selects which placements to try first (defaults to
        placement order) — the "flexibility over where she accesses the
        data" property.  Unreachable or dead Dropboxes are skipped: the
        walk continues through the remaining placements until ``k`` shards
        are in hand, so the file survives up to ``n - k`` box failures.
        Raises :class:`~repro.core.errors.BentoError` when fewer than ``k``
        placements are still retrievable.
        """
        from repro.core.client import RETRYABLE_ERRORS
        from repro.core.errors import BentoError

        k = int(metadata["k"])
        sim = bento_client.sim
        log = _obs.log
        span = log.begin_span(
            "functions.shard_gather", sim.now,
            track=bento_client.tor.node.name,
            k=k, n=int(metadata["n"])) if log is not None else None
        placements = metadata["placements"]
        by_index = {p["index"]: p for p in placements}
        if use_indices is None:
            candidates = [p["index"] for p in placements]
        else:
            # Preferred indices first, then any survivors as fallback.
            candidates = list(use_indices)
            candidates += [p["index"] for p in placements
                           if p["index"] not in set(use_indices)]
        consensus = bento_client.tor.consensus()
        shards: list[Shard] = []
        failures: list[str] = []
        for index in candidates:
            if len(shards) >= k:
                break
            placement = by_index[index]

            def fetch_piece(placement=placement):
                box = consensus.find(placement["box_fp"])
                dropbox_session = yield from bento_client.connect(
                    thread, box, timeout=timeout)
                try:
                    yield from dropbox_session.attach(
                        thread, placement["invocation"])
                    return (yield from DropboxFunction.get(
                        thread, dropbox_session, placement["name"],
                        timeout=timeout))
                finally:
                    dropbox_session.close()

            try:
                # A couple of attempts per placement so one unlucky relay
                # pick doesn't burn a surviving Dropbox; a genuinely dead
                # box fails fast (its dials are refused) and is skipped.
                piece = yield from bento_client.retrying(
                    thread, fetch_piece, attempts=3, backoff_s=1.0)
            except RETRYABLE_ERRORS as exc:
                failures.append("%s: %s" % (placement["box_nickname"], exc))
                continue
            if not piece:
                # Dropbox answered but no longer holds the piece.
                failures.append("%s: empty piece" % placement["box_nickname"])
                continue
            shards.append(Shard(index=index, data=piece))
        if len(shards) < k:
            if span is not None:
                span.end(sim.now, ok=False, retrieved=len(shards),
                         failures=len(failures))
            raise BentoError(
                "gather: only %d of %d required shards retrievable (%s)"
                % (len(shards), k, "; ".join(failures) or "no failures"))
        if span is not None:
            span.end(sim.now, ok=True, retrieved=len(shards),
                     failures=len(failures))
        return decode_shards(shards, k, int(metadata["length"]))
