"""Hidden-service DDoS defense via client puzzles (§9.4).

    "A number of proposals recommend additional defenses that change the
    topology of the introduction points, add new cell types to assist in
    rate limiting, or require client-side proofs of work prior to
    establishing a connection.  We are exploring whether these approaches
    can be implemented as function-specific protocols, rather than
    modifying Tor's existing protocols."

This function fronts a hidden service in manual-introduction mode and only
completes rendezvous for introductions carrying a valid hashcash proof
over the client's own rendezvous cookie — a function-specific protocol,
with zero changes to the Tor substrate.
"""

from __future__ import annotations

import hashlib

from repro.core.manifest import FunctionManifest
from repro.netsim.simulator import Actor, blocking

MB = 1024 * 1024

DDOS_DEFENSE_SOURCE = r'''
import hashlib
import json

def _pow_ok(cookie, nonce, difficulty_bits):
    digest = hashlib.sha256(cookie + nonce.to_bytes(8, "big")).digest()
    value = int.from_bytes(digest[:8], "big")
    return value >> (64 - difficulty_bits) == 0

def guarded_service(difficulty_bits, duration_s, poll_interval):
    content = yield from api.recv(timeout=300.0)
    state = {"active": 0, "served": 0}

    def handler(stream, host, port):
        state["active"] += 1
        try:
            request = yield from stream.recv(timeout=300.0)
            if request[:3] == b"GET":
                yield from stream.send(
                    len(content).to_bytes(8, "big") + content)
                state["served"] += 1
        except Exception:
            pass
        state["active"] -= 1
        stream.close()

    service = yield from api.stem.create_hidden_service(
        handler, n_intro=3, manual_introductions=True)
    yield from api.send(json.dumps({"onion": str(service.onion_address),
                                    "difficulty": difficulty_bits})
                        .encode("utf-8"))
    accepted = 0
    rejected = 0
    end = (yield from api.time()) + duration_s
    while (yield from api.time()) < end:
        remaining = end - (yield from api.time())
        try:
            request = yield from api.stem.wait_introduction(
                service, timeout=min(poll_interval, remaining))
        except Exception:
            continue
        extra = request.get("extra", {})
        nonce = extra.get("pow_nonce")
        if isinstance(nonce, int) and _pow_ok(request["cookie"], nonce,
                                              difficulty_bits):
            yield from api.stem.complete_rendezvous(service, request)
            accepted += 1
        else:
            rejected += 1     # no rendezvous: the attacker burned an intro
    return {"accepted": accepted, "rejected": rejected,
            "served": state["served"]}
'''


def solve_pow(cookie: bytes, difficulty_bits: int,
              max_attempts: int = 1 << 26) -> int:
    """Client-side hashcash: find a nonce for one's own rendezvous cookie."""
    for nonce in range(max_attempts):
        digest = hashlib.sha256(cookie + nonce.to_bytes(8, "big")).digest()
        if int.from_bytes(digest[:8], "big") >> (64 - difficulty_bits) == 0:
            return nonce
    raise ValueError("no nonce found within attempt budget")


def verify_pow(cookie: bytes, nonce: int, difficulty_bits: int) -> bool:
    """The check the function applies (host-side mirror for tests)."""
    digest = hashlib.sha256(cookie + nonce.to_bytes(8, "big")).digest()
    return int.from_bytes(digest[:8], "big") >> (64 - difficulty_bits) == 0


class AdmissionPuzzle:
    """Per-connection hashcash challenge for serving-plane admission.

    The same proof-of-work scheme the hidden-service defense uses for
    introductions, repurposed at the box's front door: under shed
    pressure the admission controller issues one of these instead of
    admitting, and only a request carrying a valid nonce for *this*
    challenge gets back in line.  Challenges are single-use and bound to
    the connection that received them, so a solved nonce cannot be
    replayed across connections.
    """

    __slots__ = ("challenge", "difficulty_bits", "spent")

    def __init__(self, challenge: bytes, difficulty_bits: int) -> None:
        self.challenge = bytes(challenge)
        self.difficulty_bits = int(difficulty_bits)
        self.spent = False

    @classmethod
    def issue(cls, rng, difficulty_bits: int) -> "AdmissionPuzzle":
        """Mint a fresh 16-byte challenge from the serving plane's RNG."""
        return cls(rng.randbytes(16), difficulty_bits)

    def check(self, challenge: bytes, nonce: int) -> bool:
        """Verify a solution; a valid one spends the puzzle."""
        if self.spent or bytes(challenge) != self.challenge:
            return False
        if not isinstance(nonce, int):
            return False
        if not verify_pow(self.challenge, nonce, self.difficulty_bits):
            return False
        self.spent = True
        return True


class DdosDefenseFunction:
    """Host-side helper for the puzzle-guarded hidden service."""

    SOURCE = DDOS_DEFENSE_SOURCE
    API_CALLS = frozenset({
        "send", "recv", "log", "time",
        "stem.create_hidden_service", "stem.hs_wait_introduction",
        "stem.hs_complete_rendezvous",
    })

    @classmethod
    def manifest(cls, image: str = "python-op-sgx",
                 memory_bytes: int = 8 * MB) -> FunctionManifest:
        """The manifest this function ships with."""
        return FunctionManifest.create(
            name="ddos-defense", entry="guarded_service",
            api_calls=cls.API_CALLS, image=image, memory_bytes=memory_bytes)

    @staticmethod
    @blocking
    def start(thread: Actor, session, content: bytes,
              difficulty_bits: int = 8, duration_s: float = 120.0,
              poll_interval: float = 2.0, timeout: float = 600.0) -> dict:
        """Launch the guarded service; returns {"onion", "difficulty"}."""
        import json

        from repro.core import messages

        session.framed.send_frame(messages.encode_message(
            messages.INVOKE, token=session.invocation_token,
            args=[difficulty_bits, duration_s, poll_interval]))
        session.send_message(content)
        ready = yield from session.next_output(thread, timeout=timeout)
        return json.loads(ready.decode("utf-8"))
