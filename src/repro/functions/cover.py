"""Cover: constant-rate cover traffic (§9.1).

    "Cover instructs a Bento box to ensure that a given circuit always
    transmits at a fixed rate, sending junk traffic if it has no
    legitimate traffic to send."

The function streams fixed-size junk chunks to the client at a fixed rate
for a fixed duration; the host-side helper symmetrically pushes junk
upstream, making the client's guard link bidirectionally constant-rate.
The underlying Tor primitive — injecting RELAY_DROP padding cells at a
chosen hop — is also exposed (``api.stem.send_padding``).
"""

from __future__ import annotations

from repro.core.manifest import FunctionManifest
from repro.netsim.simulator import Actor, Sleep, blocking

MB = 1024 * 1024

COVER_SOURCE = r'''
def cover(rate_bytes_per_s, duration_s, chunk_size):
    yield from api.log("cover: %d B/s for %ss" % (rate_bytes_per_s, duration_s))
    sent = 0
    interval = chunk_size * 1.0 / rate_bytes_per_s
    end = (yield from api.time()) + duration_s
    while (yield from api.time()) < end:
        junk = yield from api.random_bytes(chunk_size)
        yield from api.send(junk)
        sent += chunk_size
        yield from api.sleep(interval)
    return {"sent_bytes": sent}
'''

# A variant that pads a circuit directly with RELAY_DROP cells, the
# native Tor padding mechanism, addressed to a middle hop so even the
# exit never sees them.
COVER_DROP_SOURCE = r'''
def cover_drop(rate_cells_per_s, duration_s):
    circuit_id = yield from api.stem.new_circuit()
    sent = 0
    interval = 1.0 / rate_cells_per_s
    end = (yield from api.time()) + duration_s
    while (yield from api.time()) < end:
        yield from api.stem.send_padding(circuit_id, hop_index=1)
        sent += 1
        yield from api.sleep(interval)
    yield from api.stem.close_circuit(circuit_id)
    return {"sent_cells": sent}
'''


class CoverFunction:
    """Host-side helper for the Cover function."""

    SOURCE = COVER_SOURCE
    DROP_SOURCE = COVER_DROP_SOURCE
    API_CALLS = frozenset({"send", "log", "time", "sleep", "random"})
    DROP_API_CALLS = frozenset({"stem.new_circuit", "stem.close_circuit",
                                "stem.send_padding", "time", "sleep"})

    @classmethod
    def manifest(cls, image: str = "python",
                 memory_bytes: int = 2 * MB) -> FunctionManifest:
        """The manifest this function ships with."""
        return FunctionManifest.create(
            name="cover", entry="cover", api_calls=cls.API_CALLS,
            image=image, memory_bytes=memory_bytes)

    @classmethod
    def drop_manifest(cls, image: str = "python",
                      memory_bytes: int = 2 * MB) -> FunctionManifest:
        """Manifest for the RELAY_DROP padding variant."""
        return FunctionManifest.create(
            name="cover-drop", entry="cover_drop",
            api_calls=cls.DROP_API_CALLS, image=image,
            memory_bytes=memory_bytes)

    @staticmethod
    @blocking
    def run_bidirectional(thread: Actor, session, rate_bytes_per_s: float,
                          duration_s: float, chunk_size: int = 4096) -> dict:
        """Start downstream cover and mirror it upstream; returns stats.

        Blocks for the whole duration.  Every ``chunk_size / rate`` the
        client pushes a junk message up while the function pushes one
        down — the observable link rate is constant in both directions.
        """
        from repro.core import messages

        session.framed.send_frame(messages.encode_message(
            messages.INVOKE, token=session.invocation_token,
            args=[rate_bytes_per_s, duration_s, chunk_size]))
        interval = chunk_size / rate_bytes_per_s
        sent_up = 0
        deadline = thread.sim.now + duration_s
        junk = bytes(chunk_size)
        while thread.sim.now < deadline:
            session.send_message(junk)
            sent_up += chunk_size
            yield Sleep(interval)
        result = yield from session.await_message(thread, messages.DONE,
                                                  timeout=duration_s + 120.0)
        stats = dict(result["result"])
        stats["sent_up_bytes"] = sent_up
        return stats
