"""Multipath: split one transfer across several circuits (§9.4).

    "Several works propose adding a multipath routing scheme that splits
    a stream across multiple circuits sharing a common exit relay, and
    that dynamically schedules traffic over the stream's circuits based
    on their throughput.  Rather than modify the Tor code base, we are
    exploring whether multipath routing designs can be implemented as
    Bento functions."

This function builds N circuits sharing one exit, probes the resource
size, then issues ranged fetches on all circuits *concurrently*
(``fetch_begin``/``fetch_join``).  Slower circuits carry smaller ranges
on the next round — the dynamic scheduling the proposals describe —
though for a single file one proportional split suffices.
"""

from __future__ import annotations

from repro.core.manifest import FunctionManifest
from repro.netsim.simulator import Actor, blocking

MB = 1024 * 1024

MULTIPATH_SOURCE = r'''
def multipath(url, n_paths):
    statuses = yield from api.stem.get_network_statuses()
    exits = [r for r in statuses if "Exit" in r.flags]
    exit_relay = exits[0]
    circuits = []
    for _ in range(n_paths):
        circuit_id = yield from api.stem.new_circuit(final_hop=exit_relay)
        circuits.append(circuit_id)

    # Probe: a 1-byte ranged fetch tells us the total size and gives a
    # first throughput sample per circuit.
    probe = yield from api.stem.fetch(circuits[0], url, offset=0, length=1)
    total = probe["total"]

    # Split proportionally to measured per-circuit RTT (probe each).
    weights = []
    for circuit_id in circuits:
        sample = yield from api.stem.fetch(circuit_id, url, offset=0, length=1)
        weights.append(1.0 / max(sample["elapsed"], 1e-6))
    weight_sum = sum(weights)

    handles = []
    spans = []
    offset = 0
    for index, circuit_id in enumerate(circuits):
        if index == n_paths - 1:
            length = total - offset
        else:
            length = int(total * weights[index] / weight_sum)
        spans.append((offset, length))
        handle = yield from api.stem.fetch_begin(circuit_id, url,
                                                 offset=offset, length=length)
        handles.append(handle)
        offset += length

    parts = []
    for handle in handles:
        part = yield from api.stem.fetch_join(handle)
        parts.append(part)
    body = b"".join(part["body"] for part in parts)
    yield from api.send(body)
    for circuit_id in circuits:
        yield from api.stem.close_circuit(circuit_id)
    return {"total": total, "paths": n_paths,
            "per_path": [{"offset": span[0], "length": span[1],
                          "elapsed": part["elapsed"]}
                         for span, part in zip(spans, parts)]}
'''


class MultipathFunction:
    """Host-side helper for the multipath downloader."""

    SOURCE = MULTIPATH_SOURCE
    API_CALLS = frozenset({"send", "stem.new_circuit", "stem.close_circuit",
                           "stem.attach_stream", "stem.fetch",
                           "stem.get_network_statuses"})

    @classmethod
    def manifest(cls, image: str = "python",
                 memory_bytes: int = 16 * MB) -> FunctionManifest:
        """The manifest this function ships with."""
        return FunctionManifest.create(
            name="multipath", entry="multipath", api_calls=cls.API_CALLS,
            image=image, memory_bytes=memory_bytes)

    @staticmethod
    @blocking
    def download(thread: Actor, session, url: str, n_paths: int,
                 timeout: float = 1200.0) -> tuple[bytes, dict]:
        """Invoke a loaded multipath function; returns (body, stats)."""
        from repro.core import messages

        session.framed.send_frame(messages.encode_message(
            messages.INVOKE, token=session.invocation_token,
            args=[url, n_paths]))
        body = yield from session.next_output(thread, timeout=timeout)
        done = yield from session.await_message(thread, messages.DONE, timeout)
        return body, done["result"]
