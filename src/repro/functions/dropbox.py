"""Dropbox: ephemeral in-network file storage (§9.2).

    "The first phase accepts a put request, along with the invocation
    token, which serves as a capability permitting access to that dropbox.
    ... The second phase permits get requests with the same invocation
    token, up to either some maximum amount of bandwidth, number of
    requests, or expiry time, after which the function deletes the file
    and terminates."

Protocol (JSON header message, optionally followed by one raw-bytes
message):

    {"op": "put", "name": X}   then <bytes>   -> {"ok": true/false}
    {"op": "get", "name": X}                  -> <bytes> (empty if absent)
    {"op": "list"}                            -> JSON list of names
    {"op": "delete", "name": X}               -> {"ok": ...}
    {"op": "close"}                           -> terminates
"""

from __future__ import annotations

import json

from repro.core.manifest import FunctionManifest
from repro.netsim.simulator import Actor, blocking

MB = 1024 * 1024

DROPBOX_SOURCE = r'''
import json

def dropbox(max_bytes, max_gets, expiry_s):
    yield from api.log("dropbox: up (max_bytes=%d max_gets=%d expiry=%s)"
                       % (max_bytes, max_gets, expiry_s))
    gets = 0
    deadline = (yield from api.time()) + expiry_s
    while gets < max_gets:
        remaining = deadline - (yield from api.time())
        if remaining <= 0:
            break
        try:
            raw = yield from api.recv(timeout=remaining)
        except Exception:
            break
        try:
            request = json.loads(raw.decode("utf-8"))
            op = request.get("op")
        except Exception:
            continue
        if op == "put":
            data = yield from api.recv(timeout=60.0)
            if len(data) <= max_bytes:
                yield from api.storage.put("/drop/" + request["name"], data)
                yield from api.send(b'{"ok": true}')
            else:
                yield from api.send(b'{"ok": false, "error": "too-big"}')
        elif op == "get":
            gets += 1
            path = "/drop/" + request["name"]
            if (yield from api.storage.exists(path)):
                piece = yield from api.storage.get(path)
                yield from api.send(piece)
            else:
                yield from api.send(b"")
        elif op == "list":
            stored = yield from api.storage.list("/drop")
            names = [p[len("/drop/"):] for p in stored]
            yield from api.send(json.dumps(names).encode("utf-8"))
        elif op == "delete":
            path = "/drop/" + request["name"]
            if (yield from api.storage.exists(path)):
                yield from api.storage.delete(path)
            yield from api.send(b'{"ok": true}')
        elif op == "close":
            break
    # Expiry or exhaustion: delete everything and terminate.
    for path in (yield from api.storage.list("/drop")):
        yield from api.storage.delete(path)
    return {"gets_served": gets}
'''


class DropboxFunction:
    """Host-side helper speaking the Dropbox protocol."""

    SOURCE = DROPBOX_SOURCE
    API_CALLS = frozenset({"send", "recv", "log", "time",
                           "storage.put", "storage.get", "storage.list",
                           "storage.delete"})

    @classmethod
    def manifest(cls, image: str = "python-op-sgx",
                 memory_bytes: int = 2 * MB,
                 disk_bytes: int = 32 * MB) -> FunctionManifest:
        """The manifest this function ships with."""
        return FunctionManifest.create(
            name="dropbox", entry="dropbox", api_calls=cls.API_CALLS,
            image=image, memory_bytes=memory_bytes, disk_bytes=disk_bytes)

    # -- protocol ------------------------------------------------------------

    @staticmethod
    def start(session, max_bytes: int = 16 * MB, max_gets: int = 100,
              expiry_s: float = 3600.0) -> None:
        """Kick the dropbox loop off (does not wait)."""
        from repro.core import messages

        session.framed.send_frame(messages.encode_message(
            messages.INVOKE, token=session.invocation_token,
            args=[max_bytes, max_gets, expiry_s]))

    @staticmethod
    @blocking
    def put(thread: Actor, session, name: str, data: bytes,
            timeout: float = 600.0) -> bool:
        """Store bytes under a name in the running dropbox."""
        session.send_message(json.dumps({"op": "put", "name": name}).encode())
        session.send_message(data)
        reply = yield from session.next_output(thread, timeout=timeout)
        return bool(json.loads(reply.decode("utf-8")).get("ok"))

    @staticmethod
    @blocking
    def get(thread: Actor, session, name: str,
            timeout: float = 600.0) -> bytes:
        """Fetch a named file from the running dropbox."""
        session.send_message(json.dumps({"op": "get", "name": name}).encode())
        return (yield from session.next_output(thread, timeout=timeout))

    @staticmethod
    @blocking
    def list_names(thread: Actor, session,
                   timeout: float = 600.0) -> list[str]:
        """Names currently stored in the running dropbox."""
        session.send_message(json.dumps({"op": "list"}).encode())
        reply = yield from session.next_output(thread, timeout=timeout)
        return json.loads(reply)

    @staticmethod
    @blocking
    def delete(thread: Actor, session, name: str,
               timeout: float = 600.0) -> bool:
        """Remove a file."""
        session.send_message(json.dumps({"op": "delete", "name": name}).encode())
        reply = yield from session.next_output(thread, timeout=timeout)
        return bool(json.loads(reply).get("ok"))

    @staticmethod
    @blocking
    def close(thread: Actor, session, timeout: float = 600.0) -> dict:
        """Ask the loop to finish; returns the function's final stats."""
        from repro.core import messages

        session.send_message(json.dumps({"op": "close"}).encode())
        done = yield from session.await_message(thread, messages.DONE, timeout)
        return done["result"]
