"""Browser: offload web fetching to defeat website fingerprinting (§7).

    "The insight behind the Browser function is that the adversary cannot
    observe identifiable behaviors if the user is not the one running the
    web client!  Browser runs the web client on a separate Bento box (an
    exit node, in this case).  The function then packages up the entire
    webpage and ships it back to the client.  The size of the page alone
    can reveal information about it, so Browser pads this up to a given
    multiple of bytes."

The uploaded source follows Appendix A's shape (fetch, compress, pad to a
multiple, ``api.send``), extended to pull a page's subresources the way a
real browser would.
"""

from __future__ import annotations

import zlib
from typing import Optional

from repro.core.manifest import FunctionManifest
from repro.netsim.simulator import Actor, blocking

MB = 1024 * 1024

BROWSER_SOURCE = r'''
import zlib

def _host_of(url):
    scheme, rest = url.split("://", 1)
    return rest.split("/", 1)[0]

def browser(url, padding):
    # Fetch contents of site (the page plus every subresource it lists),
    # over one keep-alive connection like a real web client.
    yield from api.log("browser: fetching " + url)
    session = yield from api.http_session(_host_of(url))
    first = yield from session.get("/" + url.split("://", 1)[1].partition("/")[2])
    blobs = [first.body]
    for line in first.body.decode("latin-1", "replace").splitlines():
        line = line.strip()
        if line.startswith("/"):
            sub = yield from session.get(line)
            blobs.append(sub.body)
    session.close()

    # Compress contents into a single digest file.
    digest = b"".join(blobs)
    compressed = zlib.compress(digest, 1)

    # Pad to nearest multiple of 'padding'.
    final = compressed
    if padding > 0:
        remainder = len(final) % padding
        if remainder != 0:
            pad = yield from api.random_bytes(padding - remainder)
            final = final + pad

    yield from api.send(final)
    return {"resources": len(blobs), "page_bytes": len(digest),
            "sent_bytes": len(final)}
'''


class BrowserFunction:
    """Host-side helper: manifest, deployment, and response unpacking."""

    SOURCE = BROWSER_SOURCE
    API_CALLS = frozenset({"http_get", "send", "log", "random"})

    @classmethod
    def manifest(cls, image: str = "python-op-sgx",
                 memory_bytes: int = 4 * MB) -> FunctionManifest:
        """The manifest a Browser upload ships with."""
        return FunctionManifest.create(
            name="browser", entry="browser", api_calls=cls.API_CALLS,
            image=image, memory_bytes=memory_bytes)

    @staticmethod
    def unpack(blob: bytes) -> bytes:
        """Strip the random padding and decompress the page digest.

        zlib streams are self-terminating, so the trailing random bytes
        fall away naturally.
        """
        decompressor = zlib.decompressobj()
        return decompressor.decompress(blob)

    @staticmethod
    @blocking
    def fetch(thread: Actor, session, url: str, padding: int,
              timeout: float = 1200.0) -> tuple[bytes, dict]:
        """Invoke a loaded Browser and return (page_digest, stats).

        ``session`` is a :class:`~repro.core.client.BentoSession` that has
        already loaded :data:`BROWSER_SOURCE`.
        """
        from repro.core import messages

        session.framed.send_frame(
            _invoke_frame(session.invocation_token, [url, padding]))
        blob = yield from session.next_output(thread, timeout=timeout)
        done = yield from session.await_message(thread, messages.DONE, timeout)
        return BrowserFunction.unpack(blob), done["result"]


def _invoke_frame(token: Optional[str], args: list) -> bytes:
    from repro.core import messages

    return messages.encode_message(messages.INVOKE, token=token, args=args)
