"""LoadBalancer: autoscaling hidden-service replicas (§8).

    "LoadBalancer establishes introduction points and listens for clients'
    incoming requests to join them at a rendezvous point.  However, rather
    than connect to the rendezvous point itself, LoadBalancer chooses from
    a set of replicas (or spins up a new replica) and instructs the
    replica to connect to the rendezvous point on its behalf.  To create a
    replica, the LoadBalancer copies all files (including the hostname and
    private key) to the new instance ... LoadBalancer receives periodic
    messages from replicas describing their load, and uses high- and
    low-watermark thresholds to determine when to create or remove a
    replica."

Two uploaded artifacts: the balancer and the replica it clones itself
into.  Content is served over hidden-service streams with a tiny
length-prefixed GET protocol; clients hold their stream open (ending with
``DONE``) so "active" counts reflect live downloads.

The uploaded sources are coroutine-style: every api call is a blocking
generator delegated to with ``yield from``, so the whole balancer (and
each replica, and each per-stream handler) runs as one
:class:`~repro.netsim.simulator.SimTask` instead of an OS thread.
"""

from __future__ import annotations

import json

from repro.core.manifest import FunctionManifest
from repro.netsim.simulator import Actor, blocking
from repro.obs.metrics import REGISTRY as _metrics
from repro.obs.span import TRACER as _obs
from repro.tor.client import TorClient

MB = 1024 * 1024

# The serving logic both the balancer (locally) and every replica run.
_SERVE_SNIPPET = r'''
def _make_handler(content, state):
    def handler(stream, host, port):
        state["active"] += 1
        try:
            request = yield from stream.recv(timeout=300.0)
            if request[:3] == b"GET":
                yield from stream.send(len(content).to_bytes(8, "big") + content)
                while True:
                    mark = yield from stream.recv(timeout=3600.0)
                    if mark == b"" or mark[:4] == b"DONE":
                        break
                state["served"] += 1
        except Exception:
            pass
        state["active"] -= 1
        stream.close()
    return handler
'''

REPLICA_SOURCE = r'''
import json
''' + _SERVE_SNIPPET + r'''

def replica(key_material, expected_bytes):
    content = yield from api.recv(timeout=300.0)
    yield from api.log("replica: holding %d bytes" % len(content))
    state = {"active": 0, "served": 0}
    service = yield from api.stem.create_hidden_service(
        _make_handler(content, state),
        key_material=key_material, establish=False)
    yield from api.send(b'{"ready": true}')
    while True:
        raw = yield from api.recv()
        try:
            request = json.loads(raw.decode("utf-8"))
        except Exception:
            continue
        op = request.get("op")
        if op == "load":
            yield from api.send(json.dumps(state).encode("utf-8"))
        elif op == "rendezvous":
            wire = request["req"]
            yield from api.stem.complete_rendezvous(service, {
                "cookie": bytes.fromhex(wire["cookie"]),
                "rp_address": wire["rp_address"],
                "rp_port": int(wire["rp_port"]),
                "onionskin": bytes.fromhex(wire["onionskin"]),
            }, wait=False)
            yield from api.send(b'{"ok": true}')
        elif op == "stop":
            break
    return state
'''

LOADBALANCER_SOURCE = r'''
import json
''' + _SERVE_SNIPPET + r'''

def loadbalancer(replica_source, replica_manifest, high_water, low_water,
                 max_replicas, duration_s, poll_interval, announce=False,
                 standbys=0):
    content = yield from api.recv(timeout=300.0)
    state = {"active": 0, "served": 0}
    service = yield from api.stem.create_hidden_service(
        _make_handler(content, state),
        n_intro=3, manual_introductions=True)
    yield from api.send(
        json.dumps({"onion": str(service.onion_address)}).encode("utf-8"))
    key_material = service.export_key_material()

    # Load model: each instance's in-flight estimate is assigned - served.
    # "assigned" counts dispatches (known instantly); "served" comes from
    # the local handler state or replica load reports (refreshed on idle
    # ticks) — so dispatch never blocks on a poll round.
    local = {"assigned": 0}
    replicas = []
    standby_pool = []
    dead_boxes = []
    lost = {"count": 0}
    events = [[(yield from api.time()), "start", 1]]

    def tell(payload):
        # Operational announcements (replica placements / losses) for the
        # operator's session; off by default to keep the wire quiet.
        if announce:
            yield from api.send(json.dumps(payload).encode("utf-8"))

    def estimate(instance):
        if instance["kind"] == "local":
            return max(state["active"],
                       local["assigned"] - state["served"])
        rep = instance["rep"]
        return max(rep["active"], rep["assigned"] - rep["served"])

    def poll_loads():
        for rep in list(replicas):
            if not rep["ready"]:
                continue     # the only pending output would be "ready"
            try:
                yield from api.remote_send(rep["handle"], b'{"op": "load"}')
                raw = yield from api.remote_recv(rep["handle"], timeout=60.0)
                info = json.loads(raw.decode("utf-8"))
            except Exception:
                yield from lose_replica(rep)
                continue
            rep["active"] = info["active"]
            rep["served"] = info["served"]

    def spawn_replica(kind="scale-up"):
        # Deploy and push the key material + content, but do NOT wait for
        # the replica to come up: the content transfer proceeds while we
        # keep dispatching; the first dispatch to this replica waits.
        # Replicas are the operator's own infrastructure: the key and
        # content copy goes direct (the paper's LB copied files between
        # its own EC2 hosts), not through an anonymity circuit.  Boxes
        # that already ate a replica are excluded, and placement consults
        # the directory's serving-plane load reports (prefer_slack) so a
        # respawn lands on the box advertising the most free capacity —
        # not merely any box that is not known-dead.  Without reports the
        # pick falls back to the old uniform draw.
        for _attempt in range(4):
            try:
                handle = yield from api.deploy(replica_source, replica_manifest,
                                               direct=True,
                                               exclude_fingerprints=dead_boxes,
                                               prefer_slack=True)
                info = yield from api.remote_info(handle)
                yield from api.remote_invoke_nowait(
                    handle, [key_material, len(content)])
                yield from api.remote_send(handle, content)
            except Exception:
                continue
            replicas.append({"handle": handle, "active": 0, "served": 0,
                             "assigned": 0, "ready": False,
                             "box_fp": info["box_fp"]})
            events.append([(yield from api.time()), kind, 1 + len(replicas)])
            yield from tell({"replica_box": info["box_fp"], "event": kind})
            return True
        events.append([(yield from api.time()), "spawn-failed",
                       1 + len(replicas)])
        return False

    def spawn_standby():
        # A warm standby: fully provisioned (code, key material, and
        # content already pushed) but never dispatched to.  Promoting it
        # after a replica loss is instant — no copy, no provisioning —
        # which is the whole point of paying for it up front.
        for _attempt in range(4):
            try:
                handle = yield from api.deploy(replica_source, replica_manifest,
                                               direct=True,
                                               exclude_fingerprints=dead_boxes,
                                               prefer_slack=True)
                info = yield from api.remote_info(handle)
                yield from api.remote_invoke_nowait(
                    handle, [key_material, len(content)])
                yield from api.remote_send(handle, content)
            except Exception:
                continue
            standby_pool.append({"handle": handle, "active": 0, "served": 0,
                                 "assigned": 0, "ready": False,
                                 "box_fp": info["box_fp"]})
            events.append([(yield from api.time()), "standby-up",
                           len(standby_pool)])
            yield from tell({"standby_box": info["box_fp"],
                             "event": "standby-up"})
            return True
        return False

    def lose_replica(rep):
        # A replica stopped answering: its box died (or the path to it).
        # Remember the box so redeployment avoids it, then re-replicate —
        # promote a warm standby when one is up (instant), else respawn
        # cold, the paper's LB behavior.
        if rep not in replicas:
            return
        replicas.remove(rep)
        if rep.get("box_fp"):
            dead_boxes.append(rep["box_fp"])
        lost["count"] += 1
        events.append([(yield from api.time()), "replica-lost",
                       1 + len(replicas)])
        yield from tell({"replica_lost": rep.get("box_fp", "")})
        if len(replicas) < max_replicas:
            promoted = None
            while standby_pool and promoted is None:
                candidate = standby_pool.pop(0)
                if candidate.get("box_fp") in dead_boxes:
                    continue    # the standby died with the same box
                promoted = candidate
            if promoted is not None:
                replicas.append(promoted)
                events.append([(yield from api.time()), "standby-promoted",
                               1 + len(replicas)])
                yield from tell({"standby_promoted":
                                 promoted.get("box_fp", "")})
                yield from spawn_standby()   # replenish the pool
            else:
                yield from spawn_replica(kind="respawn")

    def ensure_ready(rep, timeout=300.0):
        """Wait for a replica's {"ready": true}; with a tiny timeout this
        is a non-blocking readiness poll.  A dead transport (anything but
        a timeout) loses the replica."""
        if not rep["ready"]:
            try:
                yield from api.remote_recv(rep["handle"], timeout=timeout)
                rep["ready"] = True
            except Exception as exc:
                # The sandbox has no type() and no timeout exception
                # class to catch by name; repr() carries the class name.
                if "SimTimeoutError" not in repr(exc):
                    yield from lose_replica(rep)
        return rep["ready"]

    def dispatch(request):
        # Only *ready* instances are dispatch candidates: waiting for a
        # replica mid-provisioning would stall every queued client.
        instances = [{"kind": "local"}]
        for rep in list(replicas):
            ready = yield from ensure_ready(rep, timeout=0.05)
            if ready:
                instances.append({"kind": "replica", "rep": rep})
        least = min(instances, key=estimate)
        if estimate(least) >= high_water and len(replicas) < max_replicas:
            # Start a replica for *future* load, but serve this request
            # from existing capacity — the new instance is still copying
            # the content and key material.
            yield from spawn_replica()
        if least["kind"] == "local":
            local["assigned"] += 1
            yield from api.stem.complete_rendezvous(service, request,
                                                    wait=False)
        else:
            rep = least["rep"]
            rep["assigned"] += 1
            try:
                yield from ensure_ready(rep)
                yield from api.remote_send(rep["handle"], json.dumps(
                    {"op": "rendezvous", "req": {
                        "cookie": request["cookie"].hex(),
                        "rp_address": request["rp_address"],
                        "rp_port": int(request["rp_port"]),
                        "onionskin": request["onionskin"].hex(),
                    }}).encode("utf-8"))
                yield from api.remote_recv(rep["handle"], timeout=120.0)
            except Exception:
                # The replica died under us: serve this client locally so
                # the request still completes, then replace the replica.
                yield from lose_replica(rep)
                local["assigned"] += 1
                yield from api.stem.complete_rendezvous(service, request,
                                                        wait=False)
                events.append([(yield from api.time()), "dispatch", "local"])
                return
        events.append([(yield from api.time()), "dispatch", least["kind"]])

    for _n in range(standbys):
        yield from spawn_standby()

    end = (yield from api.time()) + duration_s
    while (yield from api.time()) < end:
        remaining = end - (yield from api.time())
        try:
            request = yield from api.stem.wait_introduction(
                service, timeout=min(poll_interval, remaining))
        except Exception:
            request = None
        if request is not None:
            yield from dispatch(request)
            continue
        # Idle tick: refresh real loads and consider scaling down.
        for rep in replicas:
            yield from ensure_ready(rep, timeout=0.05)
        yield from poll_loads()
        total_active = state["active"] + sum(r["active"] for r in replicas)
        idle = [r for r in replicas
                if r["ready"] and r["active"] == 0
                and r["assigned"] <= r["served"]]
        if idle and total_active <= low_water:
            rep = idle[-1]
            replicas.remove(rep)
            try:
                yield from api.remote_send(rep["handle"], b'{"op": "stop"}')
                yield from api.remote_shutdown(rep["handle"])
            except Exception:
                pass
            events.append([(yield from api.time()), "scale-down",
                           1 + len(replicas)])

    # Drain: the service window is over, but in-flight downloads finish
    # before any instance is decommissioned.
    drain_deadline = (yield from api.time()) + 600.0
    while (yield from api.time()) < drain_deadline:
        for rep in replicas:
            yield from ensure_ready(rep, timeout=1.0)
        yield from poll_loads()
        busy = state["active"] + sum(r["active"] for r in replicas)
        waiting = (local["assigned"] - state["served"]) + sum(
            r["assigned"] - r["served"] for r in replicas)
        if all(r["ready"] for r in replicas) and busy <= 0 and waiting <= 0:
            break
        yield from api.sleep(poll_interval)

    for rep in replicas + standby_pool:
        try:
            yield from api.remote_send(rep["handle"], b'{"op": "stop"}')
            yield from api.remote_shutdown(rep["handle"])
        except Exception:
            pass
    return {"events": events, "served_local": state["served"],
            "replicas_at_end": len(replicas),
            "replicas_lost": lost["count"]}
'''


class LoadBalancerFunction:
    """Host-side helper: manifests, startup, and the client download."""

    SOURCE = LOADBALANCER_SOURCE
    REPLICA_SOURCE = REPLICA_SOURCE

    LB_API_CALLS = frozenset({
        "send", "recv", "log", "time", "sleep",
        "deploy", "remote_invoke", "remote_send", "remote_recv",
        "remote_shutdown",
        "stem.create_hidden_service", "stem.hs_wait_introduction",
        "stem.hs_complete_rendezvous",
    })
    REPLICA_API_CALLS = frozenset({
        "send", "recv", "log",
        "stem.create_hidden_service", "stem.hs_complete_rendezvous",
    })

    @classmethod
    def manifest(cls, image: str = "python-op-sgx",
                 memory_bytes: int = 24 * MB) -> FunctionManifest:
        """The balancer holds the content and the service key: it is the
        case §5.4 motivates conclaves for."""
        return FunctionManifest.create(
            name="loadbalancer", entry="loadbalancer",
            api_calls=cls.LB_API_CALLS, image=image,
            memory_bytes=memory_bytes)

    @classmethod
    def replica_manifest(cls, image: str = "python-op-sgx",
                         memory_bytes: int = 24 * MB) -> FunctionManifest:
        """Manifest for the cloned replica function."""
        return FunctionManifest.create(
            name="lb-replica", entry="replica",
            api_calls=cls.REPLICA_API_CALLS, image=image,
            memory_bytes=memory_bytes)

    @classmethod
    def start(cls, thread: Actor, session, content: bytes,
              high_water: int = 2, low_water: int = 1, max_replicas: int = 3,
              duration_s: float = 120.0, poll_interval: float = 2.0,
              replica_image: str = "python-op-sgx",
              timeout: float = 600.0, announce: bool = False,
              standbys: int = 0) -> str:
        """Launch the balancer on a loaded session; returns the onion
        address it is serving.

        With ``announce=True`` the balancer reports replica placements and
        losses as extra OUTPUT frames (JSON with ``replica_box`` /
        ``replica_lost`` keys) so an operator can watch re-replication.

        ``standbys`` pre-provisions that many warm replicas (content and
        key material already pushed, never dispatched to); a lost replica
        promotes one instantly instead of respawning cold.
        """
        return cls._start(thread, session, content, high_water, low_water,
                          max_replicas, duration_s, poll_interval,
                          replica_image, timeout, announce, standbys)

    @staticmethod
    @blocking
    def _start(thread: Actor, session, content: bytes, high_water: int,
               low_water: int, max_replicas: int, duration_s: float,
               poll_interval: float, replica_image: str, timeout: float,
               announce: bool, standbys: int = 0) -> str:
        from repro.core import messages

        cls = LoadBalancerFunction
        sim = session.client.sim
        log = _obs.log
        span = log.begin_span(
            "functions.lb_start", sim.now, track=session.box.nickname,
            box=session.box.nickname,
            content_bytes=len(content)) if log is not None else None
        args = [cls.REPLICA_SOURCE,
                cls.replica_manifest(image=replica_image).to_wire(),
                high_water, low_water, max_replicas, duration_s,
                poll_interval, announce]
        if standbys:
            # Appended only when used: the default invoke frame keeps its
            # pre-standby wire bytes, so fixed-seed replays stay identical.
            args.append(int(standbys))
        session.framed.send_frame(messages.encode_message(
            messages.INVOKE, token=session.invocation_token, args=args))
        session.send_message(content)
        ready = yield from session.next_output(thread, timeout=timeout)
        onion = json.loads(ready.decode("utf-8"))["onion"]
        if span is not None:
            span.end(sim.now, onion=onion)
        return onion

    @staticmethod
    @blocking
    def download(thread: Actor, tor_client: TorClient, onion: str,
                 timeout: float = 1200.0) -> tuple[bytes, float]:
        """One client's full download from the (possibly balanced) service.

        Returns (content, elapsed_seconds).  Matches the serving protocol:
        GET, length-prefixed body, DONE.
        """
        started = tor_client.sim.now
        log = _obs.log
        span = log.begin_span(
            "functions.lb_download", started, track=tor_client.node.name,
            client=tor_client.node.name) if log is not None else None
        try:
            circuit = yield from tor_client.connect_to_hidden_service(
                thread, onion, timeout=timeout)
            stream = yield from circuit.open_stream(thread, "", 80,
                                                    timeout=timeout)
            stream.send(b"GET")
            buffer = b""
            while len(buffer) < 8:
                chunk = yield from stream.recv(thread, timeout=timeout)
                if chunk == b"":
                    raise ConnectionError("service hung up before header")
                buffer += chunk
            total = int.from_bytes(buffer[:8], "big")
            body = buffer[8:]
            while len(body) < total:
                chunk = yield from stream.recv(thread, timeout=timeout)
                if chunk == b"":
                    raise ConnectionError("service hung up mid-body")
                body += chunk
            stream.send(b"DONE")
            stream.close()
            circuit.close()
        except BaseException as exc:
            if span is not None:
                span.end(tor_client.sim.now, ok=False,
                         error=type(exc).__name__)
            raise
        elapsed = tor_client.sim.now - started
        _metrics.histogram("lb_download_s").observe(elapsed)
        if span is not None:
            span.end(tor_client.sim.now, ok=True, bytes=len(body))
        return body, elapsed
