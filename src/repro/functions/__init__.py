"""The paper's middlebox functions.

Each module carries the *uploaded* artifact — the Python source string a
Bento client ships to a box — plus its manifest and a host-side client
helper.  The sources are genuinely executed by the in-container loader
(:mod:`repro.core.loader`), so what runs on a box is exactly what a user
would upload.

Paper sections: Browser (§7), LoadBalancer (§8), Cover (§9.1),
Dropbox (§9.2), Shard (§9.3), and the §9.4 future-work ideas
(multipath routing, geographical avoidance, hidden-service DDoS defense).
"""

from repro.functions.browser import BROWSER_SOURCE, BrowserFunction
from repro.functions.cover import COVER_SOURCE, CoverFunction
from repro.functions.dropbox import DROPBOX_SOURCE, DropboxFunction
from repro.functions.shard import SHARD_SOURCE, ShardFunction
from repro.functions.loadbalancer import (
    LOADBALANCER_SOURCE,
    REPLICA_SOURCE,
    LoadBalancerFunction,
)
from repro.functions.policyquery import POLICY_QUERY_SOURCE, PolicyQueryFunction
from repro.functions.measure import MEASURE_SOURCE, MeasureFunction
from repro.functions.multipath import MULTIPATH_SOURCE, MultipathFunction
from repro.functions.avoidance import AVOIDANCE_SOURCE, AvoidanceFunction
from repro.functions.ddos_defense import DDOS_DEFENSE_SOURCE, DdosDefenseFunction

__all__ = [
    "BROWSER_SOURCE",
    "BrowserFunction",
    "COVER_SOURCE",
    "CoverFunction",
    "DROPBOX_SOURCE",
    "DropboxFunction",
    "SHARD_SOURCE",
    "ShardFunction",
    "LOADBALANCER_SOURCE",
    "REPLICA_SOURCE",
    "LoadBalancerFunction",
    "POLICY_QUERY_SOURCE",
    "PolicyQueryFunction",
    "MEASURE_SOURCE",
    "MeasureFunction",
    "MULTIPATH_SOURCE",
    "MultipathFunction",
    "AVOIDANCE_SOURCE",
    "AvoidanceFunction",
    "DDOS_DEFENSE_SOURCE",
    "DdosDefenseFunction",
]
