"""PolicyQuery: self-serve dissemination of middlebox node policies (§5.5).

    "To support immediate, incremental deployment, we have implemented a
    function that runs on a well-known port that returns the node's
    middlebox node policy, allowing users to query Bento nodes to see
    what they support."

The operator loads this function themselves with their policy as an
argument; anyone holding the (well-known, shared) invocation token can
query it.  The Bento wire protocol also answers POLICY_QUERY natively;
this function exists to show the paper's bootstrap path works with no
protocol support at all.
"""

from __future__ import annotations

import json

from repro.core.manifest import FunctionManifest
from repro.core.policy import MiddleboxNodePolicy
from repro.netsim.simulator import Actor, blocking

MB = 1024 * 1024

POLICY_QUERY_SOURCE = r'''
import json

def policy_query(policy_json, max_queries):
    answered = 0
    while answered < max_queries:
        try:
            yield from api.recv()
        except Exception:
            break
        yield from api.send(policy_json.encode("utf-8"))
        answered += 1
    return {"answered": answered}
'''


class PolicyQueryFunction:
    """Host-side helper for the PolicyQuery function."""

    SOURCE = POLICY_QUERY_SOURCE
    API_CALLS = frozenset({"send", "recv"})

    @classmethod
    def manifest(cls, image: str = "python") -> FunctionManifest:
        """The manifest this function ships with."""
        return FunctionManifest.create(
            name="policy-query", entry="policy_query",
            api_calls=cls.API_CALLS, image=image, memory_bytes=1 * MB)

    @staticmethod
    def start(session, policy: MiddleboxNodePolicy,
              max_queries: int = 1_000_000) -> None:
        """Launch the responder with the operator's policy."""
        session.invoke_nowait([json.dumps(policy.to_wire()), max_queries])

    @staticmethod
    @blocking
    def query(thread: Actor, session,
              timeout: float = 300.0) -> MiddleboxNodePolicy:
        """Ask a running PolicyQuery function for the node's policy."""
        session.send_message(b"?")
        reply = yield from session.next_output(thread, timeout=timeout)
        return MiddleboxNodePolicy.from_wire(json.loads(reply.decode("utf-8")))
