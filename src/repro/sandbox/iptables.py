"""Per-container network rules compiled from the relay's exit policy.

"To ensure that functions cannot violate a Tor relay's exit node policies,
the Bento server converts the exit node policies into analogous iptable
rules, and applies these rules to each container" (§5.3).  A loopback
exception lets functions reach services on the Bento host itself (the
Bento server's own port), which the operator opted into by running Bento.
"""

from __future__ import annotations

from repro.tor.exitpolicy import ExitPolicy
from repro.util.errors import ReproError


class NetworkBlocked(ReproError):
    """A container attempted a connection its rules forbid."""

    def __init__(self, address: str, port: int) -> None:
        self.address = address
        self.port = port
        super().__init__(f"iptables: connection to {address}:{port} blocked")


class IptablesRuleset:
    """The compiled, per-container form of an exit policy."""

    def __init__(self, policy: ExitPolicy, host_address: str,
                 loopback_ports: tuple[int, ...] = ()) -> None:
        self._policy = policy
        self._host_address = host_address
        self._loopback_ports = tuple(loopback_ports)
        self.denied_count = 0

    @classmethod
    def from_exit_policy(cls, policy: ExitPolicy, host_address: str,
                         loopback_ports: tuple[int, ...] = ()) -> "IptablesRuleset":
        """Compile a relay's exit policy into container rules."""
        return cls(policy, host_address, loopback_ports)

    def allows(self, address: str, port: int) -> bool:
        """May a container connect to ``address:port``?"""
        if address == self._host_address and port in self._loopback_ports:
            return True
        return self._policy.allows(address, port)

    def check(self, address: str, port: int) -> None:
        """Raise :class:`NetworkBlocked` on a forbidden destination."""
        if not self.allows(address, port):
            self.denied_count += 1
            raise NetworkBlocked(address, port)

    def render(self) -> str:
        """Human-readable rule listing (for operator inspection)."""
        lines = [f"-A OUTPUT -d {self._host_address} --dport {port} -j ACCEPT"
                 for port in self._loopback_ports]
        for rule in self._policy.rules:
            target = "ACCEPT" if rule.accept else "DROP"
            lines.append(f"-A OUTPUT {rule.render()} -j {target}")
        lines.append("-A OUTPUT -j DROP")
        return "\n".join(lines)
