"""The container runtime: namespaces + cgroup + seccomp + iptables.

"Bento servers spawn and manage a dedicated container for each client's
function" (§5.2).  A :class:`Container` owns a chrooted filesystem view,
a child cgroup under the Bento server's aggregate group, a seccomp policy
(the intersection of the operator's policy and the function's manifest),
and iptables rules compiled from the relay's exit policy.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.sandbox.cgroups import CGroup, ResourceExceeded
from repro.sandbox.iptables import IptablesRuleset
from repro.sandbox.memfs import ChrootView, MemFS
from repro.sandbox.seccomp import SeccompPolicy
from repro.util.errors import ReproError


class ContainerError(ReproError):
    """Lifecycle misuse (starting a terminated container, etc.)."""


class ContainerState(enum.Enum):
    """Lifecycle states of a container."""
    CREATED = "created"
    RUNNING = "running"
    TERMINATED = "terminated"


class Container:
    """One isolated execution environment for one client function."""

    def __init__(self, container_id: str, host_fs: MemFS, parent_cgroup: CGroup,
                 seccomp: SeccompPolicy, iptables: IptablesRuleset,
                 memory_limit: int, disk_limit: int) -> None:
        self.container_id = container_id
        self.state = ContainerState.CREATED
        self.seccomp = seccomp
        self.iptables = iptables
        self.cgroup = parent_cgroup.child(
            f"container:{container_id}",
            memory=memory_limit, disk=disk_limit)
        self.fs: ChrootView = host_fs.chroot(f"/containers/{container_id}")
        self._base_memory_charged = 0
        self.kill_reason: Optional[str] = None

    # -- lifecycle ----------------------------------------------------------

    def start(self, base_memory: int) -> None:
        """Charge the image's baseline memory and mark the container live."""
        if self.state is not ContainerState.CREATED:
            raise ContainerError(f"cannot start container in state {self.state}")
        self.cgroup.charge("memory", base_memory)   # may raise ResourceExceeded
        self._base_memory_charged = base_memory
        self.state = ContainerState.RUNNING

    def kill(self, reason: str = "killed") -> None:
        """Terminate: release every resource, purge the chroot."""
        if self.state is ContainerState.TERMINATED:
            return
        self.state = ContainerState.TERMINATED
        self.kill_reason = reason
        self.fs.purge()
        self.cgroup.release_all()

    @property
    def running(self) -> bool:
        """Is the container currently live?"""
        return self.state is ContainerState.RUNNING

    # -- mediated resource use ------------------------------------------------

    def charge_memory(self, nbytes: int) -> None:
        """Account function memory; kills the container on overrun."""
        self._ensure_running()
        try:
            self.cgroup.charge("memory", nbytes)
        except ResourceExceeded:
            self.kill(reason="memory limit exceeded")
            raise

    def release_memory(self, nbytes: int) -> None:
        """Return previously charged memory to the cgroup."""
        if self.state is ContainerState.RUNNING:
            self.cgroup.charge("memory", -nbytes)

    def fs_write(self, path: str, data: bytes) -> None:
        """A disk write, charged against the disk quota."""
        self._ensure_running()
        current = self.fs.file_size(path) if self.fs.exists(path) else 0
        delta = len(data) - current
        if delta > 0:
            try:
                self.cgroup.charge("disk", delta)
            except ResourceExceeded:
                raise
        self.fs.write_file(path, data)
        if delta < 0:
            self.cgroup.charge("disk", delta)

    def fs_delete(self, path: str) -> None:
        """Delete a file and release its disk quota."""
        self._ensure_running()
        size = self.fs.file_size(path)
        self.fs.delete(path)
        self.cgroup.charge("disk", -size)

    def charge_network(self, nbytes: int) -> None:
        """Account bytes a function puts on the wire."""
        self._ensure_running()
        self.cgroup.charge("net_bytes", nbytes)

    def _ensure_running(self) -> None:
        if self.state is not ContainerState.RUNNING:
            raise ContainerError(
                f"container {self.container_id} is {self.state.value}")

    # -- introspection -----------------------------------------------------------

    @property
    def memory_used(self) -> int:
        """Bytes of memory currently charged."""
        return self.cgroup.usage["memory"]

    @property
    def disk_used(self) -> int:
        """Bytes of disk currently charged."""
        return self.cgroup.usage["disk"]
