"""Hierarchical resource accounting (the cgroup model).

Bento limits each container's memory and disk, *and* caps the aggregate
over all containers "ensuring that the co-resident Tor relay maintains a
set minimum portion of the machine's total resources" (§5.3, §6.2).  That
is exactly a two-level cgroup hierarchy: one parent group for the whole
Bento server, one child per container.  Charges propagate to ancestors; a
limit anywhere on the path rejects the charge.
"""

from __future__ import annotations

from typing import Optional

from repro.util.errors import ReproError


class ResourceExceeded(ReproError):
    """A charge would push some group past its limit."""

    def __init__(self, group: "CGroup", resource: str, requested: int) -> None:
        self.group = group
        self.resource = resource
        self.requested = requested
        super().__init__(
            f"cgroup {group.name!r}: {resource} charge of {requested} exceeds "
            f"limit {group.limits.get(resource)} "
            f"(used {group.usage.get(resource, 0)})"
        )


RESOURCES = ("memory", "disk", "cpu_ms", "net_bytes")


class CGroup:
    """One node in the accounting hierarchy."""

    def __init__(self, name: str, parent: Optional["CGroup"] = None,
                 **limits: int) -> None:
        unknown = set(limits) - set(RESOURCES)
        if unknown:
            raise ValueError(f"unknown resources: {sorted(unknown)}")
        self.name = name
        self.parent = parent
        self.limits: dict[str, int] = dict(limits)
        self.usage: dict[str, int] = {resource: 0 for resource in RESOURCES}
        self.peak: dict[str, int] = {resource: 0 for resource in RESOURCES}
        self.children: list[CGroup] = []
        if parent is not None:
            parent.children.append(self)

    def child(self, name: str, **limits: int) -> "CGroup":
        """Create a child group."""
        return CGroup(name, parent=self, **limits)

    # -- accounting -----------------------------------------------------------

    def _would_exceed(self, resource: str, amount: int) -> Optional["CGroup"]:
        group: Optional[CGroup] = self
        while group is not None:
            limit = group.limits.get(resource)
            if limit is not None and group.usage[resource] + amount > limit:
                return group
            group = group.parent
        return None

    def charge(self, resource: str, amount: int) -> None:
        """Add usage; raises :class:`ResourceExceeded` without side effects.

        Negative amounts release usage (floored at zero).
        """
        if resource not in RESOURCES:
            raise ValueError(f"unknown resource: {resource}")
        if amount > 0:
            blocker = self._would_exceed(resource, amount)
            if blocker is not None:
                raise ResourceExceeded(blocker, resource, amount)
        group: Optional[CGroup] = self
        while group is not None:
            group.usage[resource] = max(0, group.usage[resource] + amount)
            group.peak[resource] = max(group.peak[resource], group.usage[resource])
            group = group.parent

    def release_all(self) -> None:
        """Return this group's entire usage to its ancestors (teardown)."""
        for resource in RESOURCES:
            used = self.usage[resource]
            if used:
                group = self.parent
                while group is not None:
                    group.usage[resource] = max(0, group.usage[resource] - used)
                    group = group.parent
                self.usage[resource] = 0
        if self.parent is not None and self in self.parent.children:
            self.parent.children.remove(self)

    def charge_many(self, charges: dict) -> None:
        """Charge several resources as one atomic transaction.

        Either every charge lands or none does: all positive charges are
        checked against the whole ancestor path before anything mutates,
        and if an individual apply still fails (a concurrent limit change
        mid-path), the charges already applied are rolled back before the
        error propagates.  This is what admission pricing uses to reserve
        a manifest's full resource ask (memory *and* disk) without ever
        leaving a partial reservation behind.
        """
        unknown = set(charges) - set(RESOURCES)
        if unknown:
            raise ValueError(f"unknown resources: {sorted(unknown)}")
        for resource, amount in charges.items():
            if amount > 0:
                blocker = self._would_exceed(resource, amount)
                if blocker is not None:
                    raise ResourceExceeded(blocker, resource, amount)
        applied: list[tuple[str, int]] = []
        try:
            for resource, amount in charges.items():
                if amount:
                    self.charge(resource, amount)
                    applied.append((resource, amount))
        except BaseException:
            for resource, amount in reversed(applied):
                self.charge(resource, -amount)
            raise

    # -- queries ------------------------------------------------------------------

    def slack(self) -> dict:
        """Per-resource headroom along the ancestor path (None = unlimited).

        The serving plane advertises this through the directory so clients
        can place work on the box with the most room (B-JointSP-style
        joint placement) instead of picking blindly.
        """
        return {resource: self.headroom(resource) for resource in RESOURCES}

    def headroom(self, resource: str) -> Optional[int]:
        """Remaining capacity along the whole ancestor path (None = unlimited)."""
        remaining: Optional[int] = None
        group: Optional[CGroup] = self
        while group is not None:
            limit = group.limits.get(resource)
            if limit is not None:
                slack = limit - group.usage[resource]
                remaining = slack if remaining is None else min(remaining, slack)
            group = group.parent
        return remaining

    def charge_hook(self, resource: str):
        """An adapter for :class:`~repro.sandbox.memfs.MemFS` charge hooks."""
        def _hook(delta: int) -> None:
            self.charge(resource, delta)
        return _hook
