"""Seccomp-style syscall filtering over the function API surface.

The paper: "Bento also permits operators to apply system call filters in
the form of seccomp policies to disallow a function's use of specific
system calls, such as fork and execve" (§5.3).

Every :class:`~repro.core.api.FunctionApi` method declares the syscalls it
needs (``API_SYSCALLS`` in :mod:`repro.core.api`); the container checks
them against its :class:`SeccompPolicy` before the call proceeds.  A
violation kills the function, like a real seccomp SIGSYS.
"""

from __future__ import annotations

from typing import Iterable

from repro.util.errors import ReproError

# The syscall vocabulary of this simulated OS.
ALL_SYSCALLS = frozenset({
    "read", "write", "open", "unlink",         # filesystem
    "socket", "connect", "bind", "listen",     # network
    "sendto", "recvfrom",
    "fork", "execve",                          # process control
    "nanosleep", "clock_gettime",
    "getrandom",
})


class SeccompViolation(ReproError):
    """A filtered syscall was attempted (fatal to the function)."""

    def __init__(self, syscall: str, context: str = "") -> None:
        self.syscall = syscall
        suffix = f" ({context})" if context else ""
        super().__init__(f"seccomp: syscall {syscall!r} blocked{suffix}")


class SeccompPolicy:
    """An allowlist of syscalls."""

    def __init__(self, allowed: Iterable[str]) -> None:
        allowed_set = frozenset(allowed)
        unknown = allowed_set - ALL_SYSCALLS
        if unknown:
            raise ValueError(f"unknown syscalls: {sorted(unknown)}")
        self.allowed = allowed_set
        self.violation_count = 0

    @classmethod
    def allow_all(cls) -> "SeccompPolicy":
        """A policy permitting every known syscall."""
        return cls(ALL_SYSCALLS)

    @classmethod
    def deny_all(cls) -> "SeccompPolicy":
        """A policy permitting nothing."""
        return cls(())

    @classmethod
    def default_function_policy(cls) -> "SeccompPolicy":
        """The paper's suggested default: everything except fork/execve."""
        return cls(ALL_SYSCALLS - {"fork", "execve"})

    def permits(self, syscall: str) -> bool:
        """Boolean form of :meth:`rejection_reason`."""
        return syscall in self.allowed

    def check(self, syscall: str, context: str = "") -> None:
        """Raise :class:`SeccompViolation` if the syscall is filtered."""
        if syscall not in self.allowed:
            self.violation_count += 1
            raise SeccompViolation(syscall, context)

    def check_all(self, syscalls: Iterable[str], context: str = "") -> None:
        """Check a sequence of syscalls (first violation raises)."""
        for syscall in syscalls:
            self.check(syscall, context)

    def intersect(self, other: "SeccompPolicy") -> "SeccompPolicy":
        """The policy allowing only what both allow (manifest ∩ operator)."""
        return SeccompPolicy(self.allowed & other.allowed)
