"""The OS sandbox substrate (§5.3 "Sandboxing and Resource Accounting").

Simulated equivalents of the Linux isolation machinery Bento uses:

* :mod:`~repro.sandbox.memfs` -- an in-memory filesystem with chroot views,
* :mod:`~repro.sandbox.cgroups` -- hierarchical memory/disk/CPU accounting
  with hard limits,
* :mod:`~repro.sandbox.seccomp` -- syscall filters over the API surface,
* :mod:`~repro.sandbox.iptables` -- per-container network rules compiled
  from the relay's exit policy,
* :mod:`~repro.sandbox.container` -- the container runtime tying them
  together.

The enforcement *decisions* (what is denied, what is killed, what is
rate-limited) are real; only the kernel is simulated.
"""

from repro.sandbox.memfs import MemFS, FsError, FsQuotaExceeded
from repro.sandbox.cgroups import CGroup, ResourceExceeded
from repro.sandbox.seccomp import SeccompPolicy, SeccompViolation, ALL_SYSCALLS
from repro.sandbox.iptables import IptablesRuleset
from repro.sandbox.container import Container, ContainerError, ContainerState

__all__ = [
    "MemFS",
    "FsError",
    "FsQuotaExceeded",
    "CGroup",
    "ResourceExceeded",
    "SeccompPolicy",
    "SeccompViolation",
    "ALL_SYSCALLS",
    "IptablesRuleset",
    "Container",
    "ContainerError",
    "ContainerState",
]
