"""An in-memory filesystem with chroot views and usage accounting.

Containers get a chrooted subtree of their host's filesystem, so "clients
cannot access any files but their own" (§5.3).  Byte usage is charged to a
:class:`~repro.sandbox.cgroups.CGroup` so disk quotas are enforced at write
time.
"""

from __future__ import annotations

import posixpath
from repro.util.errors import ReproError


class FsError(ReproError):
    """Missing files, bad paths, directory/file confusion."""


class FsQuotaExceeded(FsError):
    """A write would exceed the owning cgroup's disk quota."""


def _normalize(path: str) -> str:
    """Normalize to an absolute, ``..``-free path.

    Escape attempts (``../../etc/passwd``) normalize harmlessly inside the
    root — the property a chroot provides.
    """
    normalized = posixpath.normpath("/" + path.lstrip("/"))
    parts = [part for part in normalized.split("/") if part not in ("", ".", "..")]
    return "/" + "/".join(parts)


class MemFS:
    """A tree of directories and byte-string files."""

    def __init__(self, charge_hook=None) -> None:
        # path -> bytes for files; dirs tracked implicitly plus explicit set.
        self._files: dict[str, bytes] = {}
        self._dirs: set[str] = {"/"}
        self._charge_hook = charge_hook   # callable(delta_bytes) or None
        self.bytes_used = 0

    # -- internals -----------------------------------------------------------

    def _charge(self, delta: int) -> None:
        if self._charge_hook is not None:
            self._charge_hook(delta)   # may raise ResourceExceeded
        self.bytes_used += delta

    def _parent_dirs(self, path: str) -> list[str]:
        parts = path.strip("/").split("/")
        return ["/" + "/".join(parts[:i]) for i in range(1, len(parts))]

    # -- operations --------------------------------------------------------------

    def write_file(self, path: str, data: bytes) -> None:
        """Create or replace a file, creating parent directories."""
        path = _normalize(path)
        if path == "/" or path in self._dirs:
            raise FsError(f"is a directory: {path}")
        old_size = len(self._files.get(path, b""))
        delta = len(data) - old_size
        if delta > 0:
            self._charge(delta)          # check quota before committing
        for parent in self._parent_dirs(path):
            self._dirs.add(parent)
        self._files[path] = bytes(data)
        if delta < 0:
            self._charge(delta)

    def read_file(self, path: str) -> bytes:
        """The file's contents; :class:`FsError` if absent."""
        path = _normalize(path)
        try:
            return self._files[path]
        except KeyError:
            raise FsError(f"no such file: {path}") from None

    def append_file(self, path: str, data: bytes) -> None:
        """Append to a file, creating it if absent."""
        path = _normalize(path)
        existing = self._files.get(path, b"")
        self.write_file(path, existing + data)

    def delete(self, path: str) -> None:
        """Remove a file (directories are removed when emptied implicitly)."""
        path = _normalize(path)
        data = self._files.pop(path, None)
        if data is None:
            raise FsError(f"no such file: {path}")
        self._charge(-len(data))

    def exists(self, path: str) -> bool:
        """Does the path exist?"""
        path = _normalize(path)
        return path in self._files or path in self._dirs

    def is_dir(self, path: str) -> bool:
        """Is dir."""
        return _normalize(path) in self._dirs

    def file_size(self, path: str) -> int:
        """File size."""
        return len(self.read_file(path))

    def mkdir(self, path: str) -> None:
        """Create a directory (and parents)."""
        path = _normalize(path)
        if path in self._files:
            raise FsError(f"file exists: {path}")
        for parent in self._parent_dirs(path):
            self._dirs.add(parent)
        self._dirs.add(path)

    def listdir(self, path: str = "/") -> list[str]:
        """Immediate children (names, not full paths) of a directory."""
        path = _normalize(path)
        if path not in self._dirs:
            raise FsError(f"no such directory: {path}")
        prefix = path.rstrip("/") + "/"
        children: set[str] = set()
        for known in list(self._files) + list(self._dirs):
            if known != path and known.startswith(prefix):
                rest = known[len(prefix):]
                children.add(rest.split("/", 1)[0])
        return sorted(children)

    def walk_files(self, path: str = "/") -> list[str]:
        """All file paths under a directory, sorted."""
        path = _normalize(path)
        prefix = "/" if path == "/" else path.rstrip("/") + "/"
        return sorted(p for p in self._files if p == path or p.startswith(prefix))

    # -- chroot ---------------------------------------------------------------

    def chroot(self, path: str) -> "ChrootView":
        """A view rooted at ``path``; escapes are structurally impossible."""
        path = _normalize(path)
        self.mkdir(path)
        return ChrootView(self, path)


class ChrootView:
    """A :class:`MemFS`-compatible view of one subtree."""

    def __init__(self, backing: MemFS, root: str) -> None:
        self._backing = backing
        self.root = root

    def _real(self, path: str) -> str:
        return _normalize(self.root + _normalize(path))

    def write_file(self, path: str, data: bytes) -> None:
        """Write file."""
        self._backing.write_file(self._real(path), data)

    def read_file(self, path: str) -> bytes:
        """Read file."""
        return self._backing.read_file(self._real(path))

    def append_file(self, path: str, data: bytes) -> None:
        """Append file."""
        self._backing.append_file(self._real(path), data)

    def delete(self, path: str) -> None:
        """Remove a file."""
        self._backing.delete(self._real(path))

    def exists(self, path: str) -> bool:
        """Does the path exist?"""
        return self._backing.exists(self._real(path))

    def is_dir(self, path: str) -> bool:
        """Is dir."""
        return self._backing.is_dir(self._real(path))

    def file_size(self, path: str) -> int:
        """File size."""
        return self._backing.file_size(self._real(path))

    def mkdir(self, path: str) -> None:
        """Mkdir."""
        self._backing.mkdir(self._real(path))

    def listdir(self, path: str = "/") -> list[str]:
        """Immediate children of a directory."""
        return self._backing.listdir(self._real(path))

    def walk_files(self, path: str = "/") -> list[str]:
        """All file paths under a directory."""
        prefix_len = len(self.root)
        return [p[prefix_len:] or "/"
                for p in self._backing.walk_files(self._real(path))]

    @property
    def bytes_used(self) -> int:
        """Total bytes of all files inside this view."""
        return sum(self._backing.file_size(self.root + p)
                   for p in self.walk_files("/"))

    def purge(self) -> None:
        """Delete every file in the view (container teardown)."""
        for path in self.walk_files("/"):
            self._backing.delete(self.root + path)
