"""Seeded, spec-driven workload generation over the Bento planes.

The workload plane closes ROADMAP item 5: instead of one bespoke script
per plane, a compact declarative :class:`~repro.workload.spec.WorkloadSpec`
composes heterogeneous tenant fleets (kvstore / loadbalancer / shard /
ddos_defense, interactive and bulk) with arrival processes (Poisson,
diurnal, flash crowd, DDoS burst, churn), drives them through any
combination of the qos/chaos/migrate planes, and rolls the run up into a
machine-checkable SLO report.  Everything downstream of the spec's seed
is deterministic: the same spec file replays bit-identically, which makes
the same matrix double as the cross-plane integration suite.

    spec   = presets.preset("qos-flash")        # or WorkloadSpec.from_file
    load   = generate(spec)                     # the frozen event program
    result = run_workload(spec)                 # drive it through the planes
    report = build_report(spec, result)         # SLOs evaluated inside
"""

from repro.workload.generator import Workload, WorkloadEvent, generate
from repro.workload.runner import run_workload
from repro.workload.sharded import run_workload_sharded, shard_spec
from repro.workload.slo import build_report, render_report
from repro.workload.spec import (ArrivalSpec, PlanesSpec, SloSpec,
                                 TenantSpec, WorkloadSpec,
                                 WorkloadSpecError)

__all__ = [
    "ArrivalSpec", "PlanesSpec", "SloSpec", "TenantSpec", "WorkloadSpec",
    "WorkloadSpecError", "Workload", "WorkloadEvent", "generate",
    "run_workload", "run_workload_sharded", "shard_spec",
    "build_report", "render_report",
]
