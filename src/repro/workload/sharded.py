"""Tenant-sharded workload execution: replica fleets behind one report.

The netsim kernel shards one simulated world across worker processes
with bit-identical merged traces (:mod:`repro.netsim.shard`).  The
workload plane's unit of scale is different: one run is one complete
Bento deployment, and its *tenants* — not its nodes — are the
independent dimension.  ``workers=K`` here therefore partitions the
spec's tenants across K replica fleets (seeded, weight-balanced via the
same partitioner the kernel uses), runs each sub-spec as a full
deployment in its own forked worker process, and merges the raw results
into one ``run_workload``-shaped dict that
:func:`repro.workload.slo.build_report` rolls up against the full spec.

What is preserved exactly: every tenant's arrival schedule (generation
forks one RNG stream per tenant, so a tenant's events are identical in
any sub-spec), per-tenant outcome records, counters (summed), recovery
samples (concatenated).  What changes: tenants in different fleets no
longer contend for the same boxes, so plane-level interactions become
per-fleet — the compatibility contract is the SLO *verdict* on the
stock presets (the tests pin qos-flash at K=4), not bit-identity with
the single-fleet run.  ``workers=1`` delegates to
:func:`~repro.workload.runner.run_workload` unchanged.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.netsim.partition import partition_nodes
from repro.netsim.shard import fork_available
from repro.util.errors import ReproError
from repro.workload.generator import generate
from repro.workload.runner import run_workload
from repro.workload.spec import WorkloadSpec

__all__ = ["run_workload_sharded", "shard_spec"]


def shard_spec(spec: WorkloadSpec, workers: int) -> list[WorkloadSpec]:
    """Split a spec into per-fleet sub-specs, balanced by arrival count.

    Returns at most ``workers`` specs; fewer when the spec has fewer
    tenants (a fleet with no tenants would be an empty simulation).
    Every sub-spec keeps the full spec's seed, planes, scale, and SLOs —
    only the tenant tuple shrinks.
    """
    if workers < 1:
        raise ReproError("workers must be >= 1")
    if workers == 1 or len(spec.tenants) == 1:
        return [spec]
    per_tenant = generate(spec).per_tenant()
    names = [tenant.name for tenant in spec.tenants]
    # +1 so a zero-arrival tenant still carries weight (its operator
    # actor is real work even if no client ever shows up).
    weights = {name: float(len(per_tenant[name]) + 1) for name in names}
    part = partition_nodes(names, min(workers, len(names)),
                           weights=weights, seed=spec.seed)
    subs = []
    for shard in range(part.n_shards):
        chosen = set(part.nodes_of(shard))
        if not chosen:
            continue
        subs.append(replace(spec, tenants=tuple(
            tenant for tenant in spec.tenants if tenant.name in chosen)))
    return subs


def run_workload_sharded(spec: WorkloadSpec, workers: int,
                         verbose: bool = False,
                         processes: Optional[bool] = None) -> dict:
    """Run a spec across ``workers`` tenant-partitioned replica fleets.

    Returns a dict with the same shape as :func:`run_workload` (so
    ``build_report(spec, result)`` applies unchanged), plus a
    ``fleets`` list recording each sub-spec's digest.  ``processes``
    forces the fork driver on or off (default: fork where available).
    """
    if workers == 1:
        return run_workload(spec, verbose=verbose)
    subs = shard_spec(spec, workers)
    if processes is None:
        processes = fork_available()
    if processes and len(subs) > 1:
        results = _run_forked(subs, verbose)
    else:
        results = [run_workload(sub, verbose=verbose) for sub in subs]
    return _merge_results(spec, results)


def _merge_results(spec: WorkloadSpec, results: list) -> dict:
    workload = generate(spec)
    counters: dict[str, int] = {}
    fault_log: dict[str, int] = {}
    tenants: dict = {}
    service_stats: dict = {}
    recovery: list[float] = []
    unfinished: list[str] = []
    probe = None
    for result in results:
        tenants.update(result["tenants"])
        service_stats.update(result["service_stats"])
        recovery.extend(result["recovery_samples"])
        unfinished.extend(result["unfinished"])
        if result["probe"] is not None:
            probe = result["probe"]
        for name, value in result["counters"].items():
            counters[name] = counters.get(name, 0) + value
        for kind, count in result["fault_log"].items():
            fault_log[kind] = fault_log.get(kind, 0) + count
    return {
        "scenario": spec.name,
        "seed": spec.seed,
        "spec_digest": spec.digest(),
        "workload_digest": workload.digest(),
        "boxes": results[0]["boxes"],
        "n_events": len(workload.events),
        "fleets": [result["spec_digest"] for result in results],
        "tenants": {name: tenants[name] for name in sorted(tenants)},
        "service_stats": dict(sorted(service_stats.items())),
        "probe": probe,
        "recovery_samples": recovery,
        "counters": counters,
        "fault_log": dict(sorted(fault_log.items())),
        "sim_time": max(result["sim_time"] for result in results),
        "all_finished": all(result["all_finished"] for result in results),
        "unfinished": sorted(unfinished),
    }


def _run_forked(subs: list, verbose: bool) -> list:
    """One forked process per fleet; results come back over pipes."""
    import multiprocessing
    mp = multiprocessing.get_context("fork")
    pipes = []
    procs = []
    for sub in subs:
        parent_end, child_end = mp.Pipe()
        proc = mp.Process(target=_fleet_main,
                          args=(child_end, sub, verbose), daemon=True)
        proc.start()
        child_end.close()
        pipes.append(parent_end)
        procs.append(proc)
    results = []
    try:
        for pipe in pipes:
            try:
                kind, payload = pipe.recv()
            except EOFError:
                raise ReproError(
                    "sharded workload fleet died without a result")
            if kind == "error":
                raise ReproError(
                    f"sharded workload fleet failed:\n{payload}")
            results.append(payload)
    except BaseException:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        raise
    finally:
        for pipe in pipes:
            pipe.close()
    for proc in procs:
        proc.join(timeout=30)
    return results


def _fleet_main(pipe, sub: WorkloadSpec, verbose: bool) -> None:
    try:
        pipe.send(("ok", run_workload(sub, verbose=verbose)))
    except BaseException:  # noqa: BLE001 - reported to the parent
        import traceback
        try:
            pipe.send(("error", traceback.format_exc()))
        except OSError:  # pragma: no cover - parent already gone
            pass
