"""Expand a spec into the concrete, replayable event program.

:func:`generate` turns a :class:`~repro.workload.spec.WorkloadSpec` into a
:class:`Workload`: the full sorted list of client events the runner will
execute, with every stochastic choice (arrival times, attack flags,
session lifetimes) already made.  The expansion draws only from RNGs
forked off ``spec.seed`` — one independent stream per tenant, so adding a
tenant to a spec never perturbs another tenant's schedule — and is a pure
function: the same spec generates the byte-identical event list, which
:meth:`Workload.digest` pins.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.util.rng import DeterministicRandom
from repro.util.serialization import canonical_encode
from repro.workload.arrivals import generate_arrivals
from repro.workload.spec import WorkloadSpec

__all__ = ["WorkloadEvent", "Workload", "generate"]


@dataclass(frozen=True)
class WorkloadEvent:
    """One client action the runner will perform.

    ``kind`` is ``"session"`` for ordinary arrivals and ``"attack"`` for
    a ddos tenant's proof-of-work-less introductions.  ``attrs`` carries
    process-specific extras (``lifetime_s``/``generation`` for churn,
    ``flash`` for flash-crowd arrivals) as a sorted tuple of pairs so the
    event is hashable and canonically encodable.
    """

    t: float
    tenant: str
    index: int
    kind: str
    attrs: tuple = ()

    def to_dict(self) -> dict:
        return {"t": self.t, "tenant": self.tenant, "index": self.index,
                "kind": self.kind, "attrs": dict(self.attrs)}

    def attr(self, name: str, default=None):
        for key, value in self.attrs:
            if key == name:
                return value
        return default


@dataclass(frozen=True)
class Workload:
    """A spec plus its fully-expanded event program."""

    spec: WorkloadSpec
    events: tuple[WorkloadEvent, ...]

    def digest(self) -> str:
        """SHA-256 over spec digest + canonical events: the replay identity.

        Two runs of :func:`generate` on equal specs must produce equal
        digests (the property tests pin this); two different schedules
        can never collide into the same digest.
        """
        payload = {
            "spec": self.spec.digest(),
            "events": [e.to_dict() for e in self.events],
        }
        return hashlib.sha256(canonical_encode(payload)).hexdigest()

    def per_tenant(self) -> dict[str, list[WorkloadEvent]]:
        """Events grouped by tenant, preserving time order."""
        grouped: dict[str, list[WorkloadEvent]] = {
            t.name: [] for t in self.spec.tenants}
        for event in self.events:
            grouped[event.tenant].append(event)
        return grouped


def generate(spec: WorkloadSpec) -> Workload:
    """Expand ``spec`` into its deterministic event program."""
    root = DeterministicRandom(f"workload:{spec.seed}")
    events: list[WorkloadEvent] = []
    for tenant in spec.tenants:
        rng = root.fork(f"tenant:{tenant.name}")
        attack_rng = root.fork(f"attack:{tenant.name}")
        for index, record in enumerate(
                generate_arrivals(tenant.arrivals, rng, spec.duration_s)):
            kind = "session"
            if tenant.function == "ddos_defense" \
                    and attack_rng.random() < tenant.attack_fraction:
                kind = "attack"
            attrs = tuple(sorted((k, v) for k, v in record.items()
                                 if k != "t"))
            events.append(WorkloadEvent(t=record["t"], tenant=tenant.name,
                                        index=index, kind=kind, attrs=attrs))
    # Global order: time, then tenant name, then index — a total order
    # independent of dict/set iteration, so the program is reproducible.
    events.sort(key=lambda e: (e.t, e.tenant, e.index))
    return Workload(spec=spec, events=tuple(events))
