"""Roll a raw workload run into a per-scenario SLO report.

:func:`build_report` turns :func:`~repro.workload.runner.run_workload`'s
raw result dict into the report schema DESIGN.md §13 documents — latency
percentiles, goodput, shed/refusal/recovery rates, per-plane sections —
and evaluates the spec's declared SLOs against it.  Reports are plain
data and deterministically ordered, so a fixed-seed run produces a
byte-identical report (the bench pins this alongside the events.jsonl
digest).

SLO semantics: each :class:`~repro.workload.spec.SloSpec` names a dotted
path into the report's ``metrics`` mapping.  A path that resolves to
``None`` (plane not enabled, no samples) is **skipped** — the SLO is not
applicable to this scenario.  A path that does not exist at all is a
**failure**: a typo in a spec must not pass silently.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.workload.spec import WorkloadSpec

__all__ = ["build_report", "evaluate_slos", "resolve_metric",
           "render_report", "percentile"]

#: Outcomes that count toward goodput (the client got what it came for).
GOOD_OUTCOMES = ("ok", "rejected")
# "rejected" is good for exactly one population: a ddos tenant's attack
# arrivals, where the defense turning the client away IS the service
# working.  build_report only credits it there.


def percentile(values: list[float], pct: float) -> Optional[float]:
    """Nearest-rank percentile; ``None`` on an empty sample."""
    if not values:
        return None
    ordered = sorted(values)
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[rank - 1]


def _latency_stats(latencies: list[float]) -> Optional[dict]:
    if not latencies:
        return None
    return {
        "n": len(latencies),
        "mean": round(sum(latencies) / len(latencies), 6),
        "p50": round(percentile(latencies, 50.0), 6),
        "p99": round(percentile(latencies, 99.0), 6),
        "max": round(max(latencies), 6),
    }


def build_report(spec: WorkloadSpec, result: dict) -> dict:
    """The SLO report for one scenario run (plain, ordered data)."""
    planes = spec.planes
    tenants_by_name = {t.name: t for t in spec.tenants}

    outcome_totals: dict[str, int] = {}
    per_tenant: dict[str, dict] = {}
    good_total = 0
    n_total = 0
    interactive_lat: list[float] = []
    bulk_lat: list[float] = []
    ddos_section: dict[str, dict] = {}

    for name in sorted(result["tenants"]):
        tenant = tenants_by_name[name]
        records = result["tenants"][name]["records"]
        outcomes: dict[str, int] = {}
        latencies: list[float] = []
        attack_records = []
        for record in records:
            outcomes[record["outcome"]] = \
                outcomes.get(record["outcome"], 0) + 1
            outcome_totals[record["outcome"]] = \
                outcome_totals.get(record["outcome"], 0) + 1
            if record["kind"] == "attack":
                attack_records.append(record)
            if record["done"] is not None and record["outcome"] == "ok":
                latencies.append(record["done"] - record["t"])
        good = outcomes.get("ok", 0)
        if tenant.function == "ddos_defense":
            # Attack arrivals succeed by being turned away.
            good += sum(1 for r in attack_records
                        if r["outcome"] == "rejected")
        n_total += len(records)
        good_total += good
        stats = _latency_stats(latencies)
        per_tenant[name] = {
            "function": tenant.function,
            "priority": tenant.priority,
            "arrivals": len(records),
            "outcomes": dict(sorted(outcomes.items())),
            "goodput": (round(good / len(records), 6)
                        if records else None),
            "latency": stats,
        }
        if stats is not None:
            bucket = (interactive_lat if tenant.priority == "interactive"
                      else bulk_lat)
            bucket.extend(latencies)
        if tenant.function == "ddos_defense":
            honest = [r for r in records if r["kind"] != "attack"]
            honest_ok = sum(1 for r in honest if r["outcome"] == "ok")
            rejected = sum(1 for r in attack_records
                           if r["outcome"] == "rejected")
            leaked = sum(1 for r in attack_records
                         if r["outcome"] == "leaked")
            ddos_section[name] = {
                "honest_arrivals": len(honest),
                "honest_ok": honest_ok,
                "honest_goodput": (round(honest_ok / len(honest), 6)
                                   if honest else None),
                "attack_arrivals": len(attack_records),
                "attacks_rejected": rejected,
                "attacks_leaked": leaked,
                "rejection_rate": (round(rejected / len(attack_records), 6)
                                   if attack_records else None),
                "service_stats": result["service_stats"].get(name),
            }

    counters = result["counters"]

    qos_section = None
    if planes.qos:
        attempts = counters["qos_admitted"] + counters["qos_rejected"]
        qos_section = {
            "admitted": counters["qos_admitted"],
            "rejected": counters["qos_rejected"],
            "shed": counters["qos_shed"],
            "throttles": counters["qos_throttles"],
            "refusals": outcome_totals.get("refused", 0),
            "refusal_rate": (round(outcome_totals.get("refused", 0)
                                   / n_total, 6) if n_total else None),
            "admission_rate": (round(counters["qos_admitted"] / attempts, 6)
                               if attempts else None),
        }

    chaos_section = None
    if planes.chaos:
        samples = result["recovery_samples"]
        chaos_section = {
            "faults_injected": counters["faults_injected"],
            "fault_log": result["fault_log"],
            "conns_torn_down": counters["conns_torn_down"],
            "recoveries": len(samples),
            "recovery_p50": (round(percentile(samples, 50.0), 6)
                             if samples else None),
            "recovery_p99": (round(percentile(samples, 99.0), 6)
                             if samples else None),
        }

    chain_section = None
    if any(t.function == "chain" for t in spec.tenants):
        chain_section = {
            "embeds": counters["chain_embeds"],
            "reembeds": counters["chain_reembeds"],
            "arc_bytes": counters["chain_arc_bytes"],
            "units_delivered": counters["chain_units_delivered"],
            "service_stats": {
                name: result["service_stats"].get(name)
                for name, t in sorted(tenants_by_name.items())
                if t.function == "chain"},
        }

    migrate_section = None
    if planes.migrate:
        migrate_section = {
            "started": counters["migrations_started"],
            "completed": counters["migrations_completed"],
            "failed": counters["migrations_failed"],
            "checkpoints": counters["checkpoints_taken"],
            "standby_promotions": counters["standby_promotions"],
        }

    probe = result["probe"]
    probe_section = None
    if probe is not None:
        probe_section = dict(probe)
        probe_section["state_preserved"] = int(probe["state_preserved"])

    metrics = {
        "sessions": {
            "total": n_total,
            "ok": outcome_totals.get("ok", 0),
            "outcomes": dict(sorted(outcome_totals.items())),
            "goodput": (round(good_total / n_total, 6)
                        if n_total else None),
        },
        "latency": {
            "interactive": _latency_stats(interactive_lat),
            "bulk": _latency_stats(bulk_lat),
        },
        "tenants": per_tenant,
        "qos": qos_section,
        "chaos": chaos_section,
        "migrate": migrate_section,
        "chain": chain_section,
        "probe": probe_section,
        "ddos": ddos_section or None,
        "sim": {
            "time": result["sim_time"],
            "all_finished": int(result["all_finished"]),
            "legacy_threads": counters["legacy_threads_spawned"],
        },
    }
    slos, passed = evaluate_slos(spec, metrics)
    return {
        "scenario": result["scenario"],
        "seed": result["seed"],
        "spec_digest": result["spec_digest"],
        "workload_digest": result["workload_digest"],
        "n_events": result["n_events"],
        "metrics": metrics,
        "slos": slos,
        "passed": passed,
        "unfinished": result["unfinished"],
    }


def resolve_metric(metrics: dict, dotted: str) -> tuple[bool, object]:
    """Walk ``dotted`` into the metrics tree: (found, value).

    A path whose prefix resolves to ``None`` is *found with value None*
    (plane off / no samples → the SLO is skipped); a key that simply
    isn't there is *not found* (the SLO fails — typos must surface).
    """
    node: object = metrics
    for part in dotted.split("."):
        if node is None:
            return True, None
        if not isinstance(node, dict) or part not in node:
            return False, None
        node = node[part]
    return True, node


_OPS = {
    "<=": lambda value, threshold: value <= threshold,
    ">=": lambda value, threshold: value >= threshold,
    "==": lambda value, threshold: value == threshold,
}


def evaluate_slos(spec: WorkloadSpec, metrics: dict) -> tuple[list, bool]:
    """Evaluate every declared SLO; returns (results, all_passed)."""
    results = []
    passed = True
    for slo in spec.slos:
        found, value = resolve_metric(metrics, slo.metric)
        if not found:
            status = "fail"
            detail = "metric path not found"
        elif value is None:
            status = "skipped"
            detail = "metric is None (plane off or no samples)"
        else:
            ok = _OPS[slo.op](float(value), slo.threshold)
            status = "pass" if ok else "fail"
            detail = f"{value} {slo.op} {slo.threshold}"
        if status == "fail":
            passed = False
        results.append({"name": slo.name, "metric": slo.metric,
                        "op": slo.op, "threshold": slo.threshold,
                        "value": value, "status": status,
                        "detail": detail})
    return results, passed


def render_report(report: dict) -> str:
    """Human-readable text rendering for the CLI."""
    lines = [
        f"scenario       : {report['scenario']} (seed={report['seed']})",
        f"events         : {report['n_events']}",
        f"workload digest: {report['workload_digest'][:16]}…",
        f"sim time       : {report['metrics']['sim']['time']:.1f}s "
        f"(all actors finished: "
        f"{bool(report['metrics']['sim']['all_finished'])})",
    ]
    sessions = report["metrics"]["sessions"]
    lines.append(f"sessions       : {sessions['total']} total, "
                 f"goodput {sessions['goodput']}")
    lines.append("  outcomes     : " + ", ".join(
        f"{k}={v}" for k, v in sessions["outcomes"].items()))
    for cls in ("interactive", "bulk"):
        stats = report["metrics"]["latency"][cls]
        if stats:
            lines.append(f"  {cls:<12} : p50 {stats['p50']:.2f}s  "
                         f"p99 {stats['p99']:.2f}s  (n={stats['n']})")
    for plane in ("qos", "chaos", "migrate", "chain"):
        section = report["metrics"][plane]
        if section:
            body = ", ".join(f"{k}={v}" for k, v in section.items()
                             if not isinstance(v, dict))
            lines.append(f"  {plane:<12} : {body}")
    probe = report["metrics"]["probe"]
    if probe:
        lines.append(f"  probe        : ops={probe['ops_ok']} "
                     f"redeploys={probe['redeploys']} "
                     f"state_preserved={bool(probe['state_preserved'])}")
    if report["slos"]:
        lines.append("SLOs:")
        for slo in report["slos"]:
            mark = {"pass": "PASS", "fail": "FAIL",
                    "skipped": "skip"}[slo["status"]]
            lines.append(f"  [{mark}] {slo['name']}: {slo['metric']} "
                         f"{slo['op']} {slo['threshold']} "
                         f"({slo['detail']})")
    lines.append("verdict        : "
                 + ("PASS" if report["passed"] else "FAIL"))
    return "\n".join(lines)
