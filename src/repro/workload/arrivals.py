"""Seeded arrival processes: when each tenant's clients show up.

Every generator takes the tenant's forked
:class:`~repro.util.rng.DeterministicRandom` and returns a sorted list of
arrival records — ``{"t": float, ...}`` — drawn entirely from that RNG,
so the same spec and seed produce byte-identical schedules.  Records
carry per-arrival attributes where the process implies them (a churn
session's lifetime, its generation in the rejoin chain).

The diurnal process uses Lewis-Shedler thinning against the peak rate:
candidates are drawn from a homogeneous Poisson at ``rate * peak_ratio``
and accepted with probability ``rate(t) / peak``.  One RNG draw per
candidate plus one per acceptance test keeps the stream deterministic
regardless of how many candidates are rejected.
"""

from __future__ import annotations

import math

from repro.util.rng import DeterministicRandom
from repro.workload.spec import ArrivalSpec, WorkloadSpecError

__all__ = ["generate_arrivals"]

#: Hard cap on arrivals from one tenant: a spec asking for more is a
#: configuration error, not a workload (the generator raises rather than
#: silently truncating).
MAX_ARRIVALS = 100_000


def generate_arrivals(arrival: ArrivalSpec, rng: DeterministicRandom,
                      duration_s: float) -> list[dict]:
    """All arrival records for one tenant over ``[0, duration_s)``."""
    maker = _KINDS[arrival.kind]
    records = maker(arrival, rng, duration_s)
    if len(records) > MAX_ARRIVALS:
        raise WorkloadSpecError(
            f"{arrival.kind} arrivals produced {len(records)} records "
            f"(> {MAX_ARRIVALS}); lower the rate or duration")
    records.sort(key=lambda r: r["t"])
    return records


def _poisson_times(rng: DeterministicRandom, rate: float, start: float,
                   end: float) -> list[float]:
    times: list[float] = []
    t = start
    while True:
        t += rng.expovariate(rate)
        if t >= end or len(times) >= MAX_ARRIVALS:
            break
        times.append(t)
    return times


def _poisson(arrival: ArrivalSpec, rng: DeterministicRandom,
             duration_s: float) -> list[dict]:
    return [{"t": t}
            for t in _poisson_times(rng, arrival.rate_per_s, 0.0, duration_s)]


def _diurnal(arrival: ArrivalSpec, rng: DeterministicRandom,
             duration_s: float) -> list[dict]:
    base = arrival.rate_per_s
    peak = base * arrival.peak_ratio
    two_pi_over_period = 2.0 * math.pi / arrival.period_s

    def rate_at(t: float) -> float:
        # Sinusoid between base (trough) and base * peak_ratio (crest),
        # starting at the midpoint and rising: a compressed day.
        mid = (base + peak) / 2.0
        amp = (peak - base) / 2.0
        return mid + amp * math.sin(two_pi_over_period * t)

    records: list[dict] = []
    t = 0.0
    while True:
        t += rng.expovariate(peak)
        if t >= duration_s or len(records) >= MAX_ARRIVALS:
            break
        if rng.random() < rate_at(t) / peak:
            records.append({"t": t})
    return records


def _flash(arrival: ArrivalSpec, rng: DeterministicRandom,
           duration_s: float) -> list[dict]:
    records = [{"t": t}
               for t in _poisson_times(rng, arrival.rate_per_s, 0.0,
                                       duration_s)]
    burst_end = min(arrival.burst_at_s + arrival.burst_duration_s, duration_s)
    records += [{"t": t, "flash": True}
                for t in _poisson_times(rng, arrival.burst_rate_per_s,
                                        arrival.burst_at_s, burst_end)]
    return records


def _burst(arrival: ArrivalSpec, rng: DeterministicRandom,
           duration_s: float) -> list[dict]:
    # The window is clamped to the run: a window that starts at or after
    # duration_s yields nothing, and the slice past duration_s is cut off
    # (so the burst lands exactly burst_arrivals only when its window
    # fits inside the run).  Draw count stays fixed either way, keeping
    # the RNG stream independent of the clamp.
    burst_end = min(arrival.burst_at_s + arrival.burst_duration_s, duration_s)
    if burst_end <= arrival.burst_at_s:
        return []
    records = []
    for _ in range(arrival.burst_arrivals):
        t = rng.uniform(arrival.burst_at_s, burst_end)
        if t < duration_s:
            records.append({"t": t})
    return records


def _churn(arrival: ArrivalSpec, rng: DeterministicRandom,
           duration_s: float) -> list[dict]:
    records: list[dict] = []
    for t0 in _poisson_times(rng, arrival.rate_per_s, 0.0, duration_s):
        t = t0
        generation = 0
        while t < duration_s and len(records) < MAX_ARRIVALS:
            lifetime = rng.expovariate(1.0 / arrival.churn_lifetime_s)
            records.append({"t": t, "lifetime_s": lifetime,
                            "generation": generation})
            # Rejoin: the same logical user comes back after a think-time
            # gap, as a new session (new circuits, new admission).
            if rng.random() >= arrival.churn_rejoin_prob:
                break
            t = t + lifetime + rng.expovariate(1.0 / arrival.churn_lifetime_s)
            generation += 1
    return records


_KINDS = {
    "poisson": _poisson,
    "diurnal": _diurnal,
    "flash": _flash,
    "burst": _burst,
    "churn": _churn,
}
