"""Execute a generated workload against a full Bento deployment.

:func:`run_workload` builds a Tor testnet at the spec's scale, enables
exactly the planes the spec asks for (qos admission on every box, a
seeded fault schedule, the migration plane), deploys one service per
tenant, and then plays the generated event program: every arrival becomes
a client actor doing real work — admission-gated kvstore sessions, bulk
hidden-service downloads, shard gathers, proof-of-work (or not)
introductions against the DDoS defense.

The run records one outcome per event — ``ok`` / ``refused`` /
``gave_up`` / ``failed`` / ``rejected`` / ``leaked`` — plus per-op
latencies and recovery samples, and returns a plain-data result dict
:func:`repro.workload.slo.build_report` rolls into the SLO report.

Determinism contract: everything below draws from the simulator's seeded
RNG tree, so a fixed spec replays bit-identically — same outcomes, same
counters, and (with ``trace_log``) a byte-identical ``events.jsonl``.
"""

from __future__ import annotations

import functools
import json
from collections import Counter as _TallyCounter
from typing import Optional

from repro.core import messages
from repro.core.client import RETRYABLE_ERRORS, BentoClient
from repro.core.errors import BentoError, ServerBusy
from repro.core.manifest import FunctionManifest
from repro.core.server import BentoServer
from repro.enclave.attestation import IntelAttestationService
from repro.functions.ddos_defense import DdosDefenseFunction, solve_pow
from repro.functions.kvstore import KvStoreFunction
from repro.functions.loadbalancer import LoadBalancerFunction
from repro.functions.shard import ShardFunction
from repro.netsim.faults import FaultPlane
from repro.netsim.simulator import Actor, Sleep
from repro.obs.metrics import REGISTRY as _metrics
from repro.obs.span import EventLog, TRACER as _obs
from repro.perf.counters import counters as _perf
from repro.tor.testnet import TorTestNetwork
from repro.util.errors import ReproError
from repro.workload.generator import Workload, WorkloadEvent, generate
from repro.workload.spec import TenantSpec, WorkloadSpec

__all__ = ["run_workload", "GRACE_S"]

MB = 1024 * 1024

#: Simulated seconds granted past ``duration_s`` for stragglers to drain.
#: The LoadBalancer alone can legitimately use ~640 of these: it serves
#: 30s past the spec duration, then its drain loop waits up to 600s for
#: replicas to go idle before tearing down.
GRACE_S = 900.0

#: Errors a client actor treats as "the service said no / went away".
#: RETRYABLE_ERRORS already subsumes BentoError and friends.
_CLIENT_ERRORS = RETRYABLE_ERRORS


def run_workload(spec: WorkloadSpec, verbose: bool = False,
                 trace_log: Optional[EventLog] = None,
                 workload: Optional[Workload] = None) -> dict:
    """Run one scenario; returns the deterministic raw-result dict.

    Pass ``trace_log`` to capture the whole run as obs-plane spans and
    events (attached for the duration, previous sink restored after) —
    the exported ``events.jsonl`` is the replay-identity artifact.
    ``workload`` short-circuits generation when the caller already
    expanded the spec (it must come from this exact spec).
    """
    if workload is None:
        workload = generate(spec)
    elif workload.spec != spec:
        raise ReproError("workload was generated from a different spec")
    _perf.reset()
    _metrics.reset()
    previous = _obs.log
    if trace_log is not None:
        _obs.attach(trace_log)
    try:
        return _run(spec, workload, verbose)
    finally:
        if trace_log is not None:
            _obs.log = previous


def _kv_manifest(tenant: TenantSpec) -> FunctionManifest:
    return FunctionManifest.create(
        "kvstore", "kvstore", KvStoreFunction.API_CALLS, image="python",
        memory_bytes=2 * MB, priority=tenant.priority)


def _run(spec: WorkloadSpec, workload: Workload, verbose: bool) -> dict:
    planes = spec.planes
    net = TorTestNetwork(n_relays=spec.n_relays, seed=spec.seed,
                         bento_fraction=spec.bento_fraction,
                         fast_crypto=True)
    ias = IntelAttestationService(net.sim.rng.fork("ias"))
    net.ias = ias
    qos_cfg = None
    if planes.qos:
        from repro.qos import QosConfig
        qos_cfg = QosConfig(slots=planes.qos_slots,
                            queue_depth=planes.qos_queue_depth,
                            queue_timeout_s=planes.qos_queue_timeout_s,
                            base_retry_after_s=1.0)
    migrate_cfg = None
    if planes.migrate:
        from repro.migrate import MigrationConfig
        migrate_cfg = MigrationConfig(quiesce_poll_s=0.5)
    net.servers = [BentoServer(r, net.authority, ias=ias,
                               orphan_grace_s=60.0, qos=qos_cfg,
                               migrate=migrate_cfg)
                   for r in net.bento_boxes()]
    fault_plane = FaultPlane(net.network) if planes.chaos else None
    fp_to_node = {r.fingerprint: r.node.name for r in net.relays}

    per_tenant_events = workload.per_tenant()
    operators = [t for t in spec.tenants
                 if t.function in ("loadbalancer", "shard", "ddos_defense",
                                   "chain")]

    shared: dict = {
        "busy_fps": set(),      # boxes hosting tenant services: do not crash
        "operators_ready": 0,
        "crashed": set(),       # node names crashed permanently
        "onions": {},           # tenant -> onion address
        "contents": {},         # tenant -> served payload
        "stats": {},            # tenant -> function DONE result
        "probe_ready": False,
    }
    records: dict[str, list[dict]] = {}
    for tenant in spec.tenants:
        records[tenant.name] = [
            {"index": e.index, "t": round(e.t, 6), "kind": e.kind,
             "done": None, "outcome": "pending", "retried": False}
            for e in per_tenant_events[tenant.name]]
    recovery_samples: list[float] = []
    probe_state = {"values": [], "redeploys": 0}

    def say(text: str) -> None:
        if verbose:
            print(f"[t={net.sim.now:8.1f}] {text}")

    def crashed_fps() -> set:
        return {fp for fp, node in fp_to_node.items()
                if node in shared["crashed"]}

    # -- session tenants: every arrival is a full admission-gated session --

    def session_flow(task: Actor, tenant: TenantSpec, event: WorkloadEvent,
                     record: dict):
        client = BentoClient(
            net.create_client(f"{tenant.name}-{event.index}"), ias=ias)
        arrived = net.sim.now
        manifest = _kv_manifest(tenant)
        lifetime = event.attr("lifetime_s")
        op_gap = (lifetime / tenant.ops_per_session
                  if lifetime else 0.0)
        failed_fps: set = set()
        while True:
            session = None
            try:
                exclude = tuple(sorted(failed_fps | crashed_fps()))
                try:
                    box = client.pick_box(exclude=exclude)
                except BentoError:
                    failed_fps.clear()   # every box excluded: start over
                    box = client.pick_box(
                        exclude=tuple(sorted(crashed_fps())))
                session = yield from client.connect_direct(task, box)
                yield from session.request_image(task, "python",
                                                 verify="none",
                                                 priority=tenant.priority)
                yield from session.load_function(
                    task, KvStoreFunction.SOURCE, manifest)
                KvStoreFunction.start(session)
                for op_i in range(tenant.ops_per_session):
                    yield from KvStoreFunction.op(
                        task, session,
                        {"op": "incr", "key": f"s{event.index}"},
                        timeout=30.0)
                    if op_gap > 0.0 and op_i + 1 < tenant.ops_per_session:
                        yield Sleep(op_gap)
                if tenant.hold_s > 0.0:
                    # Occupy the admission slot like a real session would.
                    yield Sleep(tenant.hold_s)
                session.send_message(b'{"op": "stop"}')
                yield from session.shutdown(task)
                record["done"] = round(net.sim.now, 6)
                record["outcome"] = "ok"
                return
            except RETRYABLE_ERRORS as exc:
                record["retried"] = True
                if session is not None and session.box is not None:
                    failed_fps.add(session.box.identity_fp)
                waited = net.sim.now - arrived
                if waited >= tenant.deadline_s:
                    record["outcome"] = ("refused"
                                         if isinstance(exc, ServerBusy)
                                         else "gave_up")
                    return
                if isinstance(exc, ServerBusy) and exc.retry_after > 0:
                    delay = exc.retry_after
                else:
                    delay = 0.5 + client.rng.random()
                yield Sleep(min(delay, tenant.deadline_s - waited))
            finally:
                if session is not None:
                    session.close()

    # -- the shared kvstore probe: the chaos/migrate target ----------------

    def probe_owner(task: Actor, tenant: TenantSpec,
                    events: list[WorkloadEvent]):
        client = BentoClient(net.create_client(tenant.name), ias=ias)
        manifest = _kv_manifest(tenant)
        while shared["operators_ready"] < len(operators):
            yield Sleep(1.0)
        holder: dict = {}

        def deploy():
            exclude = tuple(sorted(shared["busy_fps"] | crashed_fps()))
            box = client.pick_box(exclude=exclude)
            session = yield from client.connect_direct(task, box)
            yield from session.request_image(task, "python", verify="none",
                                             priority=tenant.priority)
            yield from session.load_function(task, KvStoreFunction.SOURCE,
                                             manifest)
            KvStoreFunction.start(session)
            holder["session"] = session
            shared["probe_node"] = fp_to_node[box.identity_fp]
            shared.setdefault("probe_home", shared["probe_node"])
            say(f"probe '{tenant.name}' on {shared['probe_node']}")

        yield from client.retrying(task, deploy, attempts=5, backoff_s=2.0)
        shared["probe_ready"] = True
        for event, record in zip(events, records[tenant.name]):
            while net.sim.now < event.t:
                yield Sleep(min(2.0, event.t - net.sim.now))
            started = net.sim.now
            disrupted = False
            ops_done = 0
            while ops_done < tenant.ops_per_session:
                def one_op():
                    return KvStoreFunction.op(
                        task, holder["session"],
                        {"op": "incr", "key": "hits"}, timeout=20.0)

                try:
                    reply = yield from client.retrying(
                        task, one_op, attempts=3, backoff_s=2.0,
                        session=holder["session"])
                except _CLIENT_ERRORS:
                    # The instance (and its state) is gone: cold redeploy
                    # on a surviving box, then retry the op so the gap
                    # measures the real outage.
                    disrupted = True
                    record["retried"] = True
                    say(f"probe '{tenant.name}' redeploying from scratch")
                    try:
                        yield from deploy()
                        probe_state["redeploys"] += 1
                    except _CLIENT_ERRORS:
                        yield Sleep(5.0)
                    continue
                probe_state["values"].append(int(reply["value"]))
                ops_done += 1
                moved_to = fp_to_node.get(
                    holder["session"].box.identity_fp)
                if moved_to and moved_to != shared.get("probe_node"):
                    say(f"probe '{tenant.name}' now on {moved_to}")
                    shared["probe_node"] = moved_to
            record["done"] = round(net.sim.now, 6)
            record["outcome"] = "ok"
            if disrupted:
                recovery_samples.append(net.sim.now - started)
        session = holder.get("session")
        if session is not None:
            try:
                session.send_message(b'{"op": "stop"}')
                yield from session.shutdown(task)
            except _CLIENT_ERRORS:
                pass
            session.close()

    # -- loadbalancer tenants: bulk hidden-service downloads ----------------

    def lb_operator(task: Actor, tenant: TenantSpec):
        content = bytes(net.sim.rng.fork(
            f"content:{tenant.name}").randbytes(tenant.payload_bytes))
        shared["contents"][tenant.name] = content
        client = BentoClient(net.create_client(f"{tenant.name}-op"),
                             ias=ias)

        def setup():
            box = client.pick_box(
                exclude=tuple(sorted(shared["busy_fps"])))
            session = yield from client.connect_direct(task, box)
            yield from session.request_image(task, "python", verify="none")
            yield from session.load_function(
                task, LoadBalancerFunction.SOURCE,
                LoadBalancerFunction.manifest(image="python"))
            return box, session

        box, session = yield from client.retrying(task, setup, attempts=5,
                                                  backoff_s=2.0)
        shared["busy_fps"].add(box.identity_fp)
        shared["operators_ready"] += 1
        onion = yield from LoadBalancerFunction.start(
            task, session, content, high_water=2, low_water=1,
            max_replicas=2, duration_s=spec.duration_s + 30.0,
            poll_interval=2.0, replica_image="python", announce=False)
        shared["onions"][tenant.name] = onion
        say(f"loadbalancer '{tenant.name}' serving {onion}")
        stats = yield from session.await_message(
            task, messages.DONE, timeout=spec.duration_s + GRACE_S)
        shared["stats"][tenant.name] = {
            "served_local": stats["result"]["served_local"],
            "replicas_lost": stats["result"]["replicas_lost"],
            "events": dict(sorted(_TallyCounter(
                e[1] for e in stats["result"]["events"]).items())),
        }
        session.close()

    def lb_visitor(task: Actor, tenant: TenantSpec, event: WorkloadEvent,
                   record: dict):
        while tenant.name not in shared["onions"]:
            if net.sim.now > spec.duration_s + 120.0:
                record["outcome"] = "failed"   # service never came up
                return
            yield Sleep(1.0)
        client = BentoClient(
            net.create_client(f"{tenant.name}-{event.index}"), ias=ias)
        onion = shared["onions"][tenant.name]
        content = shared["contents"][tenant.name]

        def download():
            body, _elapsed = yield from LoadBalancerFunction.download(
                task, client.tor, onion, timeout=60.0)
            if body != content:
                raise ConnectionError("content mismatch")

        try:
            yield from client.retrying(task, download, attempts=4,
                                       backoff_s=2.0)
            record["done"] = round(net.sim.now, 6)
            record["outcome"] = "ok"
        except _CLIENT_ERRORS:
            record["outcome"] = "gave_up"

    # -- shard tenants: scatter once, arrivals gather ----------------------

    def shard_operator(task: Actor, tenant: TenantSpec):
        payload = bytes(net.sim.rng.fork(
            f"content:{tenant.name}").randbytes(tenant.payload_bytes))
        shared["contents"][tenant.name] = payload
        client = BentoClient(net.create_client(f"{tenant.name}-op"),
                             ias=ias)

        def setup():
            box = client.pick_box(
                exclude=tuple(sorted(shared["busy_fps"])))
            session = yield from client.connect_direct(task, box)
            yield from session.request_image(task, "python", verify="none")
            yield from session.load_function(task, ShardFunction.SOURCE,
                                             ShardFunction.manifest())
            return session

        session = yield from client.retrying(task, setup, attempts=5,
                                             backoff_s=2.0)
        metadata = yield from ShardFunction.scatter(
            task, session, payload, n=tenant.shard_n, k=tenant.shard_k,
            name=tenant.name)
        session.close()
        shared[f"shard:{tenant.name}"] = metadata
        shared["busy_fps"].update(p["box_fp"]
                                  for p in metadata["placements"])
        shared["operators_ready"] += 1
        say(f"shard '{tenant.name}' scattered over " + ", ".join(
            p["box_nickname"] for p in metadata["placements"]))

    def shard_visitor(task: Actor, tenant: TenantSpec,
                      event: WorkloadEvent, record: dict):
        while f"shard:{tenant.name}" not in shared:
            if net.sim.now > spec.duration_s + 120.0:
                record["outcome"] = "failed"
                return
            yield Sleep(1.0)
        client = BentoClient(
            net.create_client(f"{tenant.name}-{event.index}"), ias=ias)
        try:
            restored = yield from ShardFunction.gather(
                task, client, shared[f"shard:{tenant.name}"], timeout=60.0)
        except _CLIENT_ERRORS:
            record["outcome"] = "gave_up"
            return
        record["done"] = round(net.sim.now, 6)
        record["outcome"] = ("ok" if restored ==
                             shared["contents"][tenant.name] else "failed")

    # -- ddos tenants: the §9.4 puzzle-guarded service under a burst -------

    def ddos_operator(task: Actor, tenant: TenantSpec):
        content = bytes(net.sim.rng.fork(
            f"content:{tenant.name}").randbytes(tenant.payload_bytes))
        shared["contents"][tenant.name] = content
        client = BentoClient(net.create_client(f"{tenant.name}-op"),
                             ias=ias)

        def setup():
            box = client.pick_box(
                exclude=tuple(sorted(shared["busy_fps"])))
            session = yield from client.connect_direct(task, box)
            yield from session.request_image(task, "python", verify="none")
            yield from session.load_function(
                task, DdosDefenseFunction.SOURCE,
                DdosDefenseFunction.manifest(image="python"))
            return box, session

        box, session = yield from client.retrying(task, setup, attempts=5,
                                                  backoff_s=2.0)
        shared["busy_fps"].add(box.identity_fp)
        shared["operators_ready"] += 1
        info = yield from DdosDefenseFunction.start(
            task, session, content,
            difficulty_bits=tenant.pow_difficulty,
            duration_s=spec.duration_s + 30.0, poll_interval=2.0)
        shared["onions"][tenant.name] = info["onion"]
        say(f"ddos defense '{tenant.name}' guarding {info['onion']}")
        stats = yield from session.await_message(
            task, messages.DONE, timeout=spec.duration_s + GRACE_S)
        shared["stats"][tenant.name] = dict(stats["result"])
        session.close()

    def ddos_arrival(task: Actor, tenant: TenantSpec,
                     event: WorkloadEvent, record: dict):
        while tenant.name not in shared["onions"]:
            if net.sim.now > spec.duration_s + 120.0:
                record["outcome"] = "failed"
                return
            yield Sleep(1.0)
        onion = shared["onions"][tenant.name]
        tor = net.create_client(f"{tenant.name}-{event.index}")
        if event.kind == "attack":
            # No proof of work: the defense must burn the introduction
            # without completing rendezvous.  "Getting in" is the failure.
            try:
                circuit = yield from tor.connect_to_hidden_service(
                    task, onion, timeout=20.0, intro_extra={})
            except ReproError:
                record["done"] = round(net.sim.now, 6)
                record["outcome"] = "rejected"
            else:
                circuit.close()
                record["outcome"] = "leaked"
            return
        difficulty = tenant.pow_difficulty
        try:
            circuit = yield from tor.connect_to_hidden_service(
                task, onion, timeout=60.0,
                intro_extra=lambda cookie: {
                    "pow_nonce": solve_pow(cookie, difficulty)})
            stream = yield from circuit.open_stream(task, "", 80,
                                                    timeout=30.0)
            stream.send(b"GET")
            buffer = b""
            while len(buffer) < 8:
                buffer += yield from stream.recv(task, timeout=60.0)
            total = int.from_bytes(buffer[:8], "big")
            body = buffer[8:]
            while len(body) < total:
                body += yield from stream.recv(task, timeout=60.0)
            circuit.close()
        except _CLIENT_ERRORS:
            record["outcome"] = "gave_up"
            return
        record["done"] = round(net.sim.now, 6)
        record["outcome"] = ("ok" if body == shared["contents"][tenant.name]
                             else "failed")

    # -- chain tenants: a service graph embedded and driven end to end ------

    def chain_operator(task: Actor, tenant: TenantSpec):
        from repro.chain import ChainDeployment, pipeline_chain

        client = BentoClient(net.create_client(f"{tenant.name}-op"),
                             ias=ias)
        template = pipeline_chain(name=f"{tenant.name}-chain", pad_bytes=64)
        servers = {s.relay.fingerprint: s for s in net.servers}
        dep = ChainDeployment(client, template, servers=servers)
        yield from client.retrying(task, lambda: dep.deploy(task),
                                   attempts=5, backoff_s=2.0)
        shared["busy_fps"].update(dep.overlay.boxes_used())
        shared[f"chain:{tenant.name}"] = dep
        shared["operators_ready"] += 1
        say(f"chain '{tenant.name}': {len(dep.overlay.replicas)} replicas "
            f"on {len(dep.overlay.boxes_used())} boxes")
        while net.sim.now < spec.duration_s + 30.0:
            yield Sleep(5.0)
        try:
            stage_stats = yield from dep.shutdown(task)
        except _CLIENT_ERRORS:
            stage_stats = {}
        shared["stats"][tenant.name] = {
            "engine": dep.overlay.engine,
            "replicas": len(dep.overlay.replicas),
            "boxes_used": len(dep.overlay.boxes_used()),
            "reembeds": dep.reembeds,
            "units_delivered": dep.units_delivered,
            "processed": {label: (s or {}).get("processed")
                          for label, s in sorted(stage_stats.items())},
        }

    def chain_arrival(task: Actor, tenant: TenantSpec,
                      event: WorkloadEvent, record: dict):
        from repro.chain import ChainDeployError

        while f"chain:{tenant.name}" not in shared:
            if net.sim.now > spec.duration_s + 120.0:
                record["outcome"] = "failed"
                return
            yield Sleep(1.0)
        dep = shared[f"chain:{tenant.name}"]
        payload = bytes(net.sim.rng.fork(
            f"unit:{tenant.name}:{event.index}").randbytes(
                min(tenant.payload_bytes, 4096)))
        expect = dep.expected_outputs(payload)
        try:
            out = yield from dep.push(task, payload,
                                      deadline_s=tenant.deadline_s)
        except ServerBusy:
            record["outcome"] = "refused"
            return
        except (ChainDeployError,) + _CLIENT_ERRORS:
            record["outcome"] = "gave_up"
            return
        record["done"] = round(net.sim.now, 6)
        record["outcome"] = "ok" if out == expect else "failed"

    # -- plane directors ---------------------------------------------------

    def chaos_director(task: Actor):
        start_s = 0.1 * spec.duration_s
        while net.sim.now < start_s:
            yield Sleep(1.0)
        relay_names = [r.node.name for r in net.relays]
        fault_plane.schedule_random(
            node_names=relay_names, start_s=net.sim.now,
            end_s=0.7 * spec.duration_s,
            n_link_cuts=planes.chaos_link_cuts,
            n_latency_spikes=planes.chaos_latency_spikes,
            mean_downtime_s=planes.chaos_mean_downtime_s,
            spike_extra_s=0.2)
        say(f"chaos: {planes.chaos_link_cuts} link cuts, "
            f"{planes.chaos_latency_spikes} latency spikes scheduled")
        if planes.chaos_crash_at_s <= 0.0:
            return
        while net.sim.now < planes.chaos_crash_at_s:
            yield Sleep(1.0)
        target = shared.get("probe_home")
        if target is not None:
            # The probe's home box goes down for good.  If the migration
            # plane drained the probe out first, the state already left
            # the blast radius; otherwise the owner redeploys cold.
            fault_plane.crash_node(target)
            shared["crashed"].add(target)
            say(f"chaos: crashed probe home {target} (permanent)")
        else:
            plain = [r.node.name for r in net.relays
                     if r.bento_port is None]
            if plain:
                victim = fault_plane.rng.choice(plain)
                fault_plane.crash_node(victim, down_for_s=30.0)
                say(f"chaos: crashed middle relay {victim} (30s)")

    def migrate_director(task: Actor):
        while not shared["probe_ready"] \
                or net.sim.now < planes.migrate_drain_at_s:
            yield Sleep(1.0)
        node = shared.get("probe_node")
        if node is None:
            return
        server = next((s for s in net.servers if s.node.name == node), None)
        if server is None or server.migrate is None:
            return
        instance = next(
            (i for i in server._by_invocation.values()
             if i.manifest is not None and i.manifest.name == "kvstore"
             and not i.terminated),
            None)
        if instance is not None:
            say(f"migrate: draining probe off {node}")
            server.migrate.request_drain(instance)

    # -- spawn everything --------------------------------------------------

    actors = []
    probe = spec.shared_probe()
    for tenant in spec.tenants:
        events = per_tenant_events[tenant.name]
        if tenant.function == "kvstore" and tenant.shared:
            actors.append(net.sim.spawn(
                functools.partial(probe_owner, tenant=tenant, events=events),
                name=f"probe:{tenant.name}"))
            continue
        if tenant.function == "loadbalancer":
            actors.append(net.sim.spawn(
                functools.partial(lb_operator, tenant=tenant),
                name=f"op:{tenant.name}"))
            per_event = lb_visitor
        elif tenant.function == "shard":
            actors.append(net.sim.spawn(
                functools.partial(shard_operator, tenant=tenant),
                name=f"op:{tenant.name}"))
            per_event = shard_visitor
        elif tenant.function == "ddos_defense":
            actors.append(net.sim.spawn(
                functools.partial(ddos_operator, tenant=tenant),
                name=f"op:{tenant.name}"))
            per_event = ddos_arrival
        elif tenant.function == "chain":
            actors.append(net.sim.spawn(
                functools.partial(chain_operator, tenant=tenant),
                name=f"op:{tenant.name}"))
            per_event = chain_arrival
        else:
            per_event = session_flow
        for event, record in zip(events, records[tenant.name]):
            actors.append(net.sim.spawn(
                functools.partial(per_event, tenant=tenant, event=event,
                                  record=record),
                name=f"{tenant.name}:{event.index}", delay=event.t))
    if fault_plane is not None:
        actors.append(net.sim.spawn(chaos_director, name="chaos-director"))
    if planes.migrate and planes.migrate_drain_at_s > 0.0 \
            and probe is not None:
        actors.append(net.sim.spawn(migrate_director,
                                    name="migrate-director"))

    horizon = spec.duration_s + GRACE_S
    for actor in actors:
        net.sim.run_until_done(actor, until=horizon)
    # Let shutdowns, orphan reaping, and LB teardown drain fully so
    # end-of-run counter/gauge invariants (slots back to free, queues
    # empty) are meaningful.
    net.sim.run(until=horizon)
    net.sim.check_failures()

    unfinished = sorted(a.name for a in actors if not a.finished)
    snap = _perf.snapshot()
    counters_out = {name: snap.get(name, 0) for name in (
        "qos_admitted", "qos_rejected", "qos_shed", "qos_throttles",
        "faults_injected", "node_crashes", "node_restarts", "links_cut",
        "links_healed", "latency_spikes", "conns_torn_down", "retries",
        "session_reconnects", "circuits_rebuilt", "replicas_respawned",
        "orphans_reaped", "checkpoints_taken", "migrations_started",
        "migrations_completed", "migrations_failed", "standby_promotions",
        "chain_embeds", "chain_reembeds", "chain_arc_bytes",
        "chain_units_delivered", "legacy_threads_spawned")}
    probe_out = None
    if probe is not None:
        values = probe_state["values"]
        probe_out = {
            "tenant": probe.name,
            "ops_ok": len(values),
            "redeploys": probe_state["redeploys"],
            "state_preserved": (len(values) > 1 and all(
                b > a for a, b in zip(values, values[1:]))),
            "home": shared.get("probe_home"),
            "final_node": shared.get("probe_node"),
        }
    return {
        "scenario": spec.name,
        "seed": spec.seed,
        "spec_digest": spec.digest(),
        "workload_digest": workload.digest(),
        "boxes": sorted(r.node.name for r in net.bento_boxes()),
        "n_events": len(workload.events),
        "tenants": {name: {"records": recs}
                    for name, recs in records.items()},
        "service_stats": dict(sorted(shared["stats"].items())),
        "probe": probe_out,
        "recovery_samples": [round(s, 6) for s in recovery_samples],
        "counters": counters_out,
        "fault_log": (dict(sorted(_TallyCounter(
            kind for _t, kind, _detail in fault_plane.log).items()))
            if fault_plane is not None else {}),
        "sim_time": round(net.sim.now, 3),
        "all_finished": not unfinished,
        "unfinished": unfinished,
    }
