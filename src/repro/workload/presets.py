"""The stock scenario matrix: one preset per plane story, plus the sweep.

Each preset is a factory returning a fully-validated
:class:`~repro.workload.spec.WorkloadSpec` with its SLOs declared inline,
so ``bench_workload.py`` and the CI smoke step share one source of truth.
``full=True`` scales duration and arrival rates up for the nightly sweep;
the default smoke shape keeps every scenario CI-sized.

The thresholds are enforced, not decorative: the whole pipeline is
deterministic for a fixed seed, so a threshold that passes once passes
every run — the margin built into each one is headroom for future code
changes (a scheduler tweak shifting latencies), not for noise.
"""

from __future__ import annotations

from repro.workload.spec import (ArrivalSpec, PlanesSpec, SloSpec,
                                 TenantSpec, WorkloadSpec)

__all__ = ["PRESETS", "preset", "smoke_names", "sweep_names"]


def _scaled(full: bool, smoke_value: float, full_value: float) -> float:
    return full_value if full else smoke_value


def qos_flash(full: bool = False) -> WorkloadSpec:
    """Flash crowd of interactive sessions against a bulk base load.

    The admission plane's story: slots fill during the flash window,
    interactive arrivals ride the priority queue, the bulk tenant absorbs
    the refusals.  The goodput SLO is the tentpole's per-plane qos
    assertion.
    """
    duration = _scaled(full, 240.0, 900.0)
    return WorkloadSpec(
        name="qos-flash",
        seed=80801,
        duration_s=duration,
        n_relays=10,
        bento_fraction=0.5,
        tenants=(
            TenantSpec(name="api", function="kvstore",
                       priority="interactive", ops_per_session=2,
                       deadline_s=60.0, hold_s=12.0,
                       arrivals=ArrivalSpec(
                           kind="flash",
                           rate_per_s=_scaled(full, 0.05, 0.1),
                           burst_at_s=duration * 0.3,
                           burst_duration_s=duration * 0.2,
                           burst_rate_per_s=_scaled(full, 0.5, 1.0))),
            TenantSpec(name="batch", function="kvstore", priority="bulk",
                       ops_per_session=3, deadline_s=90.0, hold_s=20.0,
                       arrivals=ArrivalSpec(
                           kind="poisson",
                           rate_per_s=_scaled(full, 0.05, 0.1))),
        ),
        planes=PlanesSpec(qos=True, qos_slots=2, qos_queue_depth=2,
                          qos_queue_timeout_s=8.0),
        slos=(
            SloSpec(name="qos-goodput", metric="sessions.goodput",
                    op=">=", threshold=0.75),
            SloSpec(name="qos-engaged", metric="qos.rejected",
                    op=">=", threshold=1.0),
            # Completion latency bounds at admission deadline (60s) plus
            # the session's own work and 12s slot hold, with margin.
            SloSpec(name="interactive-p99",
                    metric="latency.interactive.p99", op="<=",
                    threshold=90.0),
            SloSpec(name="no-deadlock", metric="sim.all_finished",
                    op="==", threshold=1.0),
        ),
    )


def chaos_recovery(full: bool = False) -> WorkloadSpec:
    """A stateful probe and a diurnal session load under injected faults.

    Link cuts and latency spikes land mid-run, then the probe's home box
    crashes for good — the owner must redeploy and keep serving.  The
    recovery-p99 SLO is the tentpole's per-plane chaos assertion.
    """
    duration = _scaled(full, 300.0, 1200.0)
    return WorkloadSpec(
        name="chaos-recovery",
        seed=80802,
        duration_s=duration,
        n_relays=12,
        bento_fraction=0.5,
        tenants=(
            TenantSpec(name="probe", function="kvstore", shared=True,
                       priority="interactive", ops_per_session=1,
                       arrivals=ArrivalSpec(
                           kind="poisson",
                           rate_per_s=_scaled(full, 0.06, 0.12))),
            TenantSpec(name="web", function="kvstore", priority="bulk",
                       ops_per_session=2, deadline_s=120.0,
                       arrivals=ArrivalSpec(
                           kind="diurnal",
                           rate_per_s=_scaled(full, 0.03, 0.06),
                           peak_ratio=3.0, period_s=duration / 2.0)),
        ),
        planes=PlanesSpec(chaos=True, chaos_link_cuts=2,
                          chaos_latency_spikes=2,
                          chaos_mean_downtime_s=12.0,
                          chaos_crash_at_s=duration * 0.55),
        slos=(
            SloSpec(name="recovery-p99", metric="chaos.recovery_p99",
                    op="<=", threshold=120.0),
            SloSpec(name="probe-serves-on",
                    metric="probe.ops_ok", op=">=",
                    threshold=_scaled(full, 8.0, 60.0)),
            SloSpec(name="no-deadlock", metric="sim.all_finished",
                    op="==", threshold=1.0),
        ),
    )


def migrate_handoff(full: bool = False) -> WorkloadSpec:
    """Drain the probe off its home box *before* chaos crashes it.

    The cross-plane story from the spec docs: the migration plane moves
    the probe's state out of the blast radius, so the permanent crash of
    its home box costs nothing.  ``state_preserved == 1`` is the
    tentpole's per-plane migrate assertion — with migration off this
    same scenario loses the counter state (the bench's ablation checks
    exactly that contrast).
    """
    duration = _scaled(full, 300.0, 1200.0)
    return WorkloadSpec(
        name="migrate-handoff",
        seed=80803,
        duration_s=duration,
        n_relays=12,
        bento_fraction=0.5,
        tenants=(
            TenantSpec(name="probe", function="kvstore", shared=True,
                       priority="interactive", ops_per_session=1,
                       arrivals=ArrivalSpec(
                           kind="poisson",
                           rate_per_s=_scaled(full, 0.08, 0.15))),
        ),
        planes=PlanesSpec(chaos=True, migrate=True,
                          chaos_link_cuts=0, chaos_latency_spikes=1,
                          chaos_mean_downtime_s=10.0,
                          migrate_drain_at_s=duration * 0.35,
                          chaos_crash_at_s=duration * 0.6),
        slos=(
            SloSpec(name="state-preserved",
                    metric="probe.state_preserved", op="==",
                    threshold=1.0),
            SloSpec(name="migration-completed",
                    metric="migrate.completed", op=">=", threshold=1.0),
            SloSpec(name="no-failed-migrations",
                    metric="migrate.failed", op="==", threshold=0.0),
            SloSpec(name="no-deadlock", metric="sim.all_finished",
                    op="==", threshold=1.0),
        ),
    )


def ddos_burst(full: bool = False) -> WorkloadSpec:
    """The §9.4 defense under a generated burst, half without proof of work.

    A burst process slams the guarded hidden service with a mixed crowd;
    the attack fraction carries no PoW and must be turned away at the
    introduction point while honest clients still get the content.
    """
    duration = _scaled(full, 240.0, 600.0)
    return WorkloadSpec(
        name="ddos-burst",
        seed=80804,
        duration_s=duration,
        n_relays=10,
        bento_fraction=0.5,
        tenants=(
            TenantSpec(name="guard", function="ddos_defense",
                       priority="bulk", payload_bytes=20_000,
                       attack_fraction=0.5, pow_difficulty=6,
                       deadline_s=120.0,
                       arrivals=ArrivalSpec(
                           kind="burst",
                           burst_at_s=duration * 0.25,
                           burst_duration_s=duration * 0.4,
                           burst_arrivals=int(_scaled(full, 12, 40)))),
        ),
        planes=PlanesSpec(),
        slos=(
            SloSpec(name="attacks-rejected",
                    metric="ddos.guard.rejection_rate", op=">=",
                    threshold=1.0),
            SloSpec(name="honest-served",
                    metric="ddos.guard.honest_goodput", op=">=",
                    threshold=0.9),
            SloSpec(name="no-deadlock", metric="sim.all_finished",
                    op="==", threshold=1.0),
        ),
    )


def cross_plane(full: bool = False) -> WorkloadSpec:
    """All three planes at once over the full function mix.

    qos admission in front of every box, a seeded fault schedule, and a
    probe drain racing a crash — plus churn, a flash crowd, a
    load-balanced bulk service, scattered shards, and the puzzle-guarded
    hidden service.  This is the repo's first everything-on integration
    scenario; the regression test asserts no plane-interaction deadlocks
    or counter leaks on top of these SLOs.
    """
    duration = _scaled(full, 360.0, 1200.0)
    return WorkloadSpec(
        name="cross-plane",
        seed=80805,
        duration_s=duration,
        n_relays=14,
        bento_fraction=0.7,
        tenants=(
            TenantSpec(name="probe", function="kvstore", shared=True,
                       priority="interactive", ops_per_session=1,
                       arrivals=ArrivalSpec(
                           kind="poisson",
                           rate_per_s=_scaled(full, 0.05, 0.1))),
            TenantSpec(name="api", function="kvstore",
                       priority="interactive", ops_per_session=2,
                       deadline_s=60.0,
                       arrivals=ArrivalSpec(
                           kind="flash",
                           rate_per_s=_scaled(full, 0.02, 0.05),
                           burst_at_s=duration * 0.4,
                           burst_duration_s=duration * 0.15,
                           burst_rate_per_s=_scaled(full, 0.25, 0.6))),
            TenantSpec(name="swarm", function="kvstore", priority="bulk",
                       ops_per_session=2, deadline_s=120.0,
                       arrivals=ArrivalSpec(
                           kind="churn",
                           rate_per_s=_scaled(full, 0.02, 0.04),
                           churn_lifetime_s=30.0,
                           churn_rejoin_prob=0.4)),
            TenantSpec(name="cdn", function="loadbalancer",
                       priority="bulk", payload_bytes=30_000,
                       deadline_s=120.0,
                       arrivals=ArrivalSpec(
                           kind="poisson",
                           rate_per_s=_scaled(full, 0.015, 0.04))),
            TenantSpec(name="vault", function="shard", priority="bulk",
                       payload_bytes=20_000, shard_n=3, shard_k=2,
                       deadline_s=120.0,
                       arrivals=ArrivalSpec(
                           kind="poisson",
                           rate_per_s=_scaled(full, 0.01, 0.03))),
            TenantSpec(name="guard", function="ddos_defense",
                       priority="bulk", payload_bytes=10_000,
                       attack_fraction=0.4, pow_difficulty=5,
                       deadline_s=120.0,
                       arrivals=ArrivalSpec(
                           kind="burst",
                           burst_at_s=duration * 0.5,
                           burst_duration_s=duration * 0.25,
                           burst_arrivals=int(_scaled(full, 8, 24)))),
        ),
        planes=PlanesSpec(qos=True, qos_slots=10, qos_queue_depth=8,
                          qos_queue_timeout_s=8.0,
                          chaos=True, chaos_link_cuts=2,
                          chaos_latency_spikes=2,
                          chaos_mean_downtime_s=10.0,
                          chaos_crash_at_s=duration * 0.7,
                          migrate=True,
                          migrate_drain_at_s=duration * 0.3),
        slos=(
            SloSpec(name="overall-goodput", metric="sessions.goodput",
                    op=">=", threshold=0.6),
            SloSpec(name="state-preserved",
                    metric="probe.state_preserved", op="==",
                    threshold=1.0),
            SloSpec(name="attacks-rejected",
                    metric="ddos.guard.rejection_rate", op=">=",
                    threshold=1.0),
            SloSpec(name="no-deadlock", metric="sim.all_finished",
                    op="==", threshold=1.0),
        ),
    )


def chain_pipeline(full: bool = False) -> WorkloadSpec:
    """The chain plane's story: a Cover→Browser-defense→Store graph.

    An operator embeds the stock pipeline template against the qos
    directory's advertised slack (qos is on so boxes actually advertise)
    and deploys every replica as a real attested session; arrivals are
    traffic units pushed through the whole graph, good only if the sink's
    bytes match the template's transform oracle.  The goodput SLO is the
    chain plane's per-plane assertion.
    """
    duration = _scaled(full, 240.0, 900.0)
    return WorkloadSpec(
        name="chain-pipeline",
        seed=80806,
        duration_s=duration,
        n_relays=12,
        bento_fraction=0.5,
        tenants=(
            TenantSpec(name="pipeline", function="chain",
                       priority="interactive", payload_bytes=2048,
                       deadline_s=90.0,
                       arrivals=ArrivalSpec(
                           kind="poisson",
                           rate_per_s=_scaled(full, 0.05, 0.12))),
        ),
        planes=PlanesSpec(qos=True, qos_slots=8, qos_queue_depth=8,
                          qos_queue_timeout_s=8.0),
        slos=(
            SloSpec(name="chain-goodput", metric="tenants.pipeline.goodput",
                    op=">=", threshold=0.9),
            SloSpec(name="chain-deployed", metric="chain.embeds",
                    op=">=", threshold=1.0),
            SloSpec(name="chain-units", metric="chain.units_delivered",
                    op=">=", threshold=1.0),
            SloSpec(name="no-deadlock", metric="sim.all_finished",
                    op="==", threshold=1.0),
        ),
    )


PRESETS = {
    "qos-flash": qos_flash,
    "chaos-recovery": chaos_recovery,
    "migrate-handoff": migrate_handoff,
    "ddos-burst": ddos_burst,
    "cross-plane": cross_plane,
    "chain-pipeline": chain_pipeline,
}


def preset(name: str, full: bool = False) -> WorkloadSpec:
    """Build a stock scenario by name (raises KeyError on unknown)."""
    return PRESETS[name](full=full)


def smoke_names() -> list[str]:
    """The CI smoke sweep: one scenario per plane story."""
    return ["qos-flash", "chaos-recovery", "migrate-handoff",
            "chain-pipeline"]


def sweep_names() -> list[str]:
    """The full nightly matrix: every stock scenario."""
    return list(PRESETS)
