"""Declarative workload specs: the scenario matrix's unit of exchange.

A :class:`WorkloadSpec` is a compact, serializable description of one
scenario: which tenants exist (function mix, priority class), how their
clients arrive (Poisson, diurnal cycles, flash crowds, DDoS bursts,
churn), which planes are enabled (qos/chaos/migrate), at what scale
(relays, duration), and which SLOs the run must meet.  Specs are plain
data end to end:

* :meth:`WorkloadSpec.to_dict` / :meth:`~WorkloadSpec.from_dict` round-trip
  losslessly (the property tests pin this), and :meth:`~WorkloadSpec.to_json`
  / :meth:`~WorkloadSpec.from_json` make the spec a reviewable text file;
* :meth:`WorkloadSpec.digest` hashes the canonical encoding, so two specs
  are the same scenario iff their digests match;
* every stochastic choice downstream (arrival times, attack flags,
  payload bytes) derives from ``seed`` alone — the same spec file replays
  bit-identically.

Parsing is **strict**: unknown keys and malformed values raise
:class:`WorkloadSpecError` instead of being silently dropped, because a
typo'd knob that parses is a scenario you did not mean to run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Mapping

from repro.util.errors import ReproError
from repro.util.serialization import canonical_encode

__all__ = [
    "ARRIVAL_KINDS", "TENANT_FUNCTIONS", "SLO_OPS",
    "ArrivalSpec", "TenantSpec", "PlanesSpec", "SloSpec", "WorkloadSpec",
    "WorkloadSpecError",
]

#: Supported arrival processes (see :mod:`repro.workload.arrivals`).
ARRIVAL_KINDS = ("poisson", "diurnal", "flash", "burst", "churn")

#: Functions a tenant may deploy (the paper's evaluation mix, plus the
#: chain plane's service graphs).
TENANT_FUNCTIONS = ("kvstore", "loadbalancer", "shard", "ddos_defense",
                    "chain")

#: Comparison operators an SLO assertion may use.
SLO_OPS = ("<=", ">=", "==")

_PRIORITIES = ("interactive", "bulk")


class WorkloadSpecError(ReproError):
    """A spec failed validation or could not be parsed."""


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise WorkloadSpecError(message)


def _from_mapping(cls, data: Mapping[str, Any], context: str):
    """Strict dataclass hydration: unknown keys are errors."""
    _require(isinstance(data, Mapping),
             f"{context}: expected a mapping, got {type(data).__name__}")
    known = {f.name: f for f in fields(cls)}
    unknown = sorted(set(data) - set(known))
    _require(not unknown, f"{context}: unknown keys {unknown}")
    kwargs: dict[str, Any] = {}
    for name, value in data.items():
        kind = known[name].type
        # Normalize the scalar types JSON can blur (int written for a
        # float field) so round-trips are exact.
        if kind == "float" and isinstance(value, (int, float)) \
                and not isinstance(value, bool):
            value = float(value)
        kwargs[name] = value
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise WorkloadSpecError(f"{context}: {exc}") from exc


@dataclass(frozen=True)
class ArrivalSpec:
    """How one tenant's client sessions arrive over the run.

    ``kind`` selects the process; the other fields parameterize it (each
    kind reads only its own fields, the rest must stay at their defaults
    — validation enforces this so a spec cannot carry dead knobs):

    * ``poisson`` — open-loop Poisson at ``rate_per_s``;
    * ``diurnal`` — inhomogeneous Poisson whose rate swings sinusoidally
      between ``rate_per_s`` and ``rate_per_s * peak_ratio`` with period
      ``period_s`` (a compressed day);
    * ``flash`` — Poisson base load plus a flash crowd: an extra
      ``burst_rate_per_s`` inside ``[burst_at_s, burst_at_s +
      burst_duration_s)``;
    * ``burst`` — exactly ``burst_arrivals`` arrivals packed uniformly
      into the burst window (the DDoS shape: no base load, one slam);
    * ``churn`` — Poisson arrivals where each session lives
      ``~Exp(churn_lifetime_s)`` and rejoins with probability
      ``churn_rejoin_prob``, so the active population turns over.
    """

    kind: str
    rate_per_s: float = 0.0
    peak_ratio: float = 1.0
    period_s: float = 0.0
    burst_at_s: float = 0.0
    burst_duration_s: float = 0.0
    burst_arrivals: int = 0
    burst_rate_per_s: float = 0.0
    churn_lifetime_s: float = 0.0
    churn_rejoin_prob: float = 0.0

    def __post_init__(self) -> None:
        _require(self.kind in ARRIVAL_KINDS,
                 f"arrival kind must be one of {ARRIVAL_KINDS}, "
                 f"got {self.kind!r}")
        _require(self.rate_per_s >= 0.0, "rate_per_s must be >= 0")
        if self.kind in ("poisson", "diurnal", "flash", "churn"):
            _require(self.rate_per_s > 0.0,
                     f"{self.kind} arrivals need rate_per_s > 0")
        if self.kind == "diurnal":
            _require(self.peak_ratio >= 1.0, "peak_ratio must be >= 1")
            _require(self.period_s > 0.0, "diurnal needs period_s > 0")
        else:
            _require(self.peak_ratio == 1.0 and self.period_s == 0.0,
                     f"{self.kind} arrivals must not set diurnal fields")
        if self.kind in ("flash", "burst"):
            _require(self.burst_duration_s > 0.0,
                     f"{self.kind} needs burst_duration_s > 0")
            _require(self.burst_at_s >= 0.0, "burst_at_s must be >= 0")
        else:
            _require(self.burst_at_s == 0.0 and self.burst_duration_s == 0.0,
                     f"{self.kind} arrivals must not set burst window fields")
        if self.kind == "flash":
            _require(self.burst_rate_per_s > 0.0,
                     "flash needs burst_rate_per_s > 0")
        else:
            _require(self.burst_rate_per_s == 0.0,
                     f"{self.kind} must not set burst_rate_per_s")
        if self.kind == "burst":
            _require(self.burst_arrivals > 0, "burst needs burst_arrivals > 0")
        else:
            _require(self.burst_arrivals == 0,
                     f"{self.kind} must not set burst_arrivals")
        if self.kind == "churn":
            _require(self.churn_lifetime_s > 0.0,
                     "churn needs churn_lifetime_s > 0")
            _require(0.0 <= self.churn_rejoin_prob < 1.0,
                     "churn_rejoin_prob must be in [0, 1)")
        else:
            _require(self.churn_lifetime_s == 0.0
                     and self.churn_rejoin_prob == 0.0,
                     f"{self.kind} arrivals must not set churn fields")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a function deployment plus its client population.

    ``function`` picks the workload shape:

    * ``kvstore`` with ``shared=False`` (default) — every arrival is a
      full Bento session (connect → admission → load → ops → shutdown):
      the admission-plane stressor.  ``ops_per_session`` requests run
      inside each session; churn arrivals spread them over the session
      lifetime.
    * ``kvstore`` with ``shared=True`` — one long-lived stateful instance
      owned by an operator; arrivals become operations against it.  This
      is the probe the chaos/migrate planes act on (crash its box, drain
      it), and its counter values prove whether state survived.
    * ``loadbalancer`` — an operator serves ``payload_bytes`` of content
      behind a hidden-service LoadBalancer; arrivals are bulk downloads.
    * ``shard`` — an operator scatters ``payload_bytes`` across
      ``shard_n`` dropboxes (any ``shard_k`` reconstruct); arrivals are
      gathers that must be bit-identical.
    * ``ddos_defense`` — an operator runs the §9.4 puzzle-guarded hidden
      service at ``pow_difficulty`` bits; a generated ``attack_fraction``
      of arrivals carry no proof of work and must be rejected.
    * ``chain`` — an operator embeds and deploys the stock
      Cover→Browser-defense→Store service graph through the chain plane
      (:mod:`repro.chain`); arrivals are traffic units pushed end to end
      whose sink output must match the template's transform oracle.

    ``deadline_s`` is the per-session SLO: a completion later than this
    counts against goodput.  ``hold_s`` keeps a session's container alive
    that many seconds after its last op before shutting down — the knob
    that makes sessions occupy admission slots long enough for the qos
    plane to have something to arbitrate (a zero-hold session releases
    its slot in well under a second).
    """

    name: str
    function: str
    arrivals: ArrivalSpec
    priority: str = "bulk"
    ops_per_session: int = 1
    payload_bytes: int = 65536
    shared: bool = False
    deadline_s: float = 30.0
    hold_s: float = 0.0
    attack_fraction: float = 0.0
    pow_difficulty: int = 6
    shard_n: int = 4
    shard_k: int = 2

    def __post_init__(self) -> None:
        _require(bool(self.name) and self.name.isidentifier(),
                 f"tenant name must be a non-empty identifier, "
                 f"got {self.name!r}")
        _require(self.function in TENANT_FUNCTIONS,
                 f"tenant function must be one of {TENANT_FUNCTIONS}, "
                 f"got {self.function!r}")
        _require(self.priority in _PRIORITIES,
                 f"priority must be one of {_PRIORITIES}")
        _require(self.ops_per_session >= 1, "ops_per_session must be >= 1")
        _require(self.payload_bytes >= 1, "payload_bytes must be >= 1")
        _require(self.deadline_s > 0.0, "deadline_s must be > 0")
        _require(self.hold_s >= 0.0, "hold_s must be >= 0")
        _require(0.0 <= self.attack_fraction <= 1.0,
                 "attack_fraction must be in [0, 1]")
        if self.function != "ddos_defense":
            _require(self.attack_fraction == 0.0,
                     "attack_fraction only applies to ddos_defense tenants")
        _require(1 <= self.pow_difficulty <= 20,
                 "pow_difficulty must be in [1, 20]")
        if self.function == "shard":
            _require(2 <= self.shard_k <= self.shard_n <= 10,
                     "shard needs 2 <= shard_k <= shard_n <= 10")
        if self.shared:
            _require(self.function == "kvstore",
                     "only kvstore tenants can be shared")

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TenantSpec":
        data = dict(data)
        arrivals = data.get("arrivals")
        _require(arrivals is not None, "tenant missing 'arrivals'")
        data["arrivals"] = _from_mapping(ArrivalSpec, arrivals,
                                         "tenant.arrivals")
        return _from_mapping(cls, data, "tenant")


@dataclass(frozen=True)
class PlanesSpec:
    """Which planes the scenario enables, and their scenario-level knobs.

    With a plane off, its config never reaches the servers and the run is
    bit-identical to one where the plane's code does not exist (the same
    opt-in contract every plane has honored since PR 5).

    ``chaos_crash_at_s`` crashes the shared kvstore probe's *home* box
    permanently at that time (0 disables).  ``migrate_drain_at_s`` drains
    the probe to a slack-rich box at that time (0 disables).  Scheduling
    the drain before the crash is the cross-plane story: the migration
    plane moves the state out of the blast radius before chaos lands.
    """

    qos: bool = False
    chaos: bool = False
    migrate: bool = False
    qos_slots: int = 8
    qos_queue_depth: int = 8
    qos_queue_timeout_s: float = 5.0
    chaos_link_cuts: int = 2
    chaos_latency_spikes: int = 2
    chaos_mean_downtime_s: float = 15.0
    chaos_crash_at_s: float = 0.0
    migrate_drain_at_s: float = 0.0

    def __post_init__(self) -> None:
        _require(self.qos_slots >= 1, "qos_slots must be >= 1")
        _require(self.qos_queue_depth >= 0, "qos_queue_depth must be >= 0")
        _require(self.qos_queue_timeout_s > 0.0,
                 "qos_queue_timeout_s must be > 0")
        _require(self.chaos_link_cuts >= 0 and self.chaos_latency_spikes >= 0,
                 "chaos fault counts must be >= 0")
        _require(self.chaos_mean_downtime_s > 0.0,
                 "chaos_mean_downtime_s must be > 0")
        _require(self.chaos_crash_at_s >= 0.0, "chaos_crash_at_s must be >= 0")
        _require(self.migrate_drain_at_s >= 0.0,
                 "migrate_drain_at_s must be >= 0")
        if not self.chaos:
            _require(self.chaos_crash_at_s == 0.0,
                     "chaos_crash_at_s needs the chaos plane enabled")
        if not self.migrate:
            _require(self.migrate_drain_at_s == 0.0,
                     "migrate_drain_at_s needs the migrate plane enabled")


@dataclass(frozen=True)
class SloSpec:
    """One machine-checkable assertion over the scenario's SLO report.

    ``metric`` is a dotted path into the report dict (e.g.
    ``tenants.api.p99_s`` or ``planes.qos.goodput_ratio``); booleans read
    as 0/1.  A path whose *final* value is ``None`` (the plane was off,
    or no samples exist) is **skipped**, not violated; a path that does
    not exist at all is a violation — typos must not pass silently.
    """

    name: str
    metric: str
    op: str
    threshold: float

    def __post_init__(self) -> None:
        _require(bool(self.name), "SLO name must be non-empty")
        _require(bool(self.metric), "SLO metric path must be non-empty")
        _require(self.op in SLO_OPS, f"SLO op must be one of {SLO_OPS}")
        _require(isinstance(self.threshold, (int, float))
                 and not isinstance(self.threshold, bool),
                 "SLO threshold must be a number")


@dataclass(frozen=True)
class WorkloadSpec:
    """A complete scenario: tenants x arrivals x planes x scale x SLOs."""

    name: str
    seed: int
    duration_s: float
    tenants: tuple[TenantSpec, ...]
    planes: PlanesSpec = field(default_factory=PlanesSpec)
    slos: tuple[SloSpec, ...] = ()
    n_relays: int = 10
    bento_fraction: float = 0.5

    def __post_init__(self) -> None:
        _require(bool(self.name), "spec name must be non-empty")
        _require(isinstance(self.seed, int) and not isinstance(self.seed, bool),
                 "seed must be an int")
        _require(self.duration_s > 0.0, "duration_s must be > 0")
        if not isinstance(self.tenants, tuple):
            object.__setattr__(self, "tenants", tuple(self.tenants))
        if not isinstance(self.slos, tuple):
            object.__setattr__(self, "slos", tuple(self.slos))
        _require(len(self.tenants) >= 1, "spec needs at least one tenant")
        names = [t.name for t in self.tenants]
        _require(len(set(names)) == len(names),
                 f"tenant names must be unique, got {names}")
        _require(sum(1 for t in self.tenants if t.shared) <= 1,
                 "at most one shared kvstore tenant per spec")
        _require(4 <= self.n_relays <= 64, "n_relays must be in [4, 64]")
        _require(0.0 < self.bento_fraction <= 1.0,
                 "bento_fraction must be in (0, 1]")
        for t_s in (self.planes.chaos_crash_at_s,
                    self.planes.migrate_drain_at_s):
            _require(t_s < self.duration_s,
                     f"plane action at t={t_s} lies past duration_s")

    # -- tenant views ------------------------------------------------------

    def shared_probe(self) -> TenantSpec | None:
        """The shared kvstore tenant (the chaos/migrate probe), if any."""
        for tenant in self.tenants:
            if tenant.shared:
                return tenant
        return None

    def session_tenants(self) -> list[TenantSpec]:
        """Tenants whose arrivals are full sessions through admission."""
        return [t for t in self.tenants
                if t.function == "kvstore" and not t.shared]

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """A plain JSON-able dict; ``from_dict`` inverts it exactly."""
        out = asdict(self)
        out["tenants"] = [asdict(t) for t in self.tenants]
        out["slos"] = [asdict(s) for s in self.slos]
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadSpec":
        _require(isinstance(data, Mapping),
                 f"spec: expected a mapping, got {type(data).__name__}")
        data = dict(data)
        unknown = sorted(set(data) - {f.name for f in fields(cls)})
        _require(not unknown, f"spec: unknown keys {unknown}")
        tenants = data.pop("tenants", None)
        _require(isinstance(tenants, (list, tuple)) and tenants,
                 "spec needs a non-empty 'tenants' list")
        planes = data.pop("planes", None)
        slos = data.pop("slos", ())
        _require(isinstance(slos, (list, tuple)),
                 "spec 'slos' must be a list")
        spec_kwargs = dict(data)
        spec_kwargs["tenants"] = tuple(TenantSpec.from_dict(t)
                                       for t in tenants)
        spec_kwargs["planes"] = (_from_mapping(PlanesSpec, planes, "planes")
                                 if planes is not None else PlanesSpec())
        spec_kwargs["slos"] = tuple(_from_mapping(SloSpec, s, "slo")
                                    for s in slos)
        if "duration_s" in spec_kwargs and isinstance(
                spec_kwargs["duration_s"], int):
            spec_kwargs["duration_s"] = float(spec_kwargs["duration_s"])
        if "bento_fraction" in spec_kwargs and isinstance(
                spec_kwargs["bento_fraction"], int):
            spec_kwargs["bento_fraction"] = float(
                spec_kwargs["bento_fraction"])
        try:
            return cls(**spec_kwargs)
        except TypeError as exc:
            raise WorkloadSpecError(f"spec: {exc}") from exc

    def to_json(self) -> str:
        """The spec as deterministic, reviewable JSON."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "WorkloadSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise WorkloadSpecError(f"spec is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path: str) -> "WorkloadSpec":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def digest(self) -> str:
        """SHA-256 over the canonical encoding: the scenario's identity."""
        return hashlib.sha256(canonical_encode(self.to_dict())).hexdigest()
