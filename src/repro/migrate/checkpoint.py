"""Sealed checkpoint/restore of function state (the migration plane).

A checkpoint is the complete migratable image of a running
:class:`~repro.core.server.FunctionInstance`: the uploaded source, its
manifest, the state its ``checkpoint()`` export returned, the args of the
last invocation, every file in its (FS-Protected) store, and any inbox
messages that arrived after quiesce.  The wire format is a
canonical-encoded dict, so checkpoints are deterministic byte-for-byte.

Sealing is layered exactly like the paper's storage story (§5.4):

* **at rest** — :func:`store_local_checkpoint` seals the wire bytes under
  the enclave's *measurement+platform* sealing key and writes them through
  FS Protect, whose versioned envelopes give rollback detection.  Only
  the same enclave code on the same box can unseal; a checkpoint copied
  to another platform raises :class:`~repro.enclave.sealing.SealingError`
  rather than silently loading.
* **in motion** — a drain never ships the platform-sealed blob (it would
  be useless off-box by construction).  It re-seals the checkpoint under
  the attested :class:`~repro.enclave.conclave.SecureChannel` to the
  destination conclave, so the state crosses the network end-to-end
  encrypted between the two attested enclaves and neither host ever sees
  plaintext.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.core.errors import BentoError
from repro.enclave.sealing import seal_data, unseal_data
from repro.perf.counters import counters as _perf
from repro.util.serialization import canonical_decode, canonical_encode

#: Where the latest sealed checkpoint rests inside the instance's own
#: (FS-Protected) store.  Excluded from the files a checkpoint captures.
CHECKPOINT_PATH = "/.bento/checkpoint.sealed"


class MigrationError(BentoError):
    """A checkpoint, restore, or drain failed."""


class NotCheckpointable(MigrationError):
    """The function does not export ``checkpoint()``/``restore(state)``."""


@dataclass(frozen=True)
class Checkpoint:
    """One migratable snapshot of a function instance."""

    name: str               # manifest name (identity check on restore)
    entry: str              # manifest entry point
    image: str              # container image name
    manifest: dict          # full manifest wire dict
    code: str               # the uploaded source
    state: Any              # whatever the function's checkpoint() returned
    args: list              # args of the last invocation (restart recipe)
    files: dict             # path -> bytes, the function's file store
    inbox: list             # undelivered client payloads, oldest first
    seq: int                # shipping sequence (standby lag accounting)
    taken_at: float         # sim time of the snapshot
    measurement: str        # enclave measurement ("" outside a conclave)

    def to_wire(self) -> dict:
        return {
            "name": self.name, "entry": self.entry, "image": self.image,
            "manifest": dict(self.manifest), "code": self.code,
            "state": self.state, "args": list(self.args),
            "files": dict(self.files), "inbox": list(self.inbox),
            "seq": int(self.seq), "taken_at": float(self.taken_at),
            "measurement": self.measurement,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "Checkpoint":
        return cls(
            name=wire["name"], entry=wire["entry"], image=wire["image"],
            manifest=dict(wire["manifest"]), code=wire["code"],
            state=wire["state"], args=list(wire["args"]),
            files=dict(wire["files"]), inbox=list(wire["inbox"]),
            seq=int(wire["seq"]), taken_at=float(wire["taken_at"]),
            measurement=wire.get("measurement", ""),
        )


def _instance_fs(instance):
    if instance.conclave is not None:
        return instance.conclave.fs
    return instance.container.fs


def checkpoint_instance(instance, seq: int = 0) -> Checkpoint:
    """Snapshot a (quiesced or idle) instance.

    The function's exported state must canonical-encode — that is checked
    here, eagerly, so a bad export fails the checkpoint rather than the
    restore on a remote box.
    """
    runtime = instance.runtime
    if runtime is None or not instance.checkpointable:
        raise NotCheckpointable(
            "function does not export checkpoint()/restore(state)")
    state = runtime.checkpoint_state()
    try:
        canonical_encode(state)
    except Exception as exc:
        raise MigrationError(
            f"checkpoint state is not canonical-encodable: {exc}") from exc
    fs = _instance_fs(instance)
    files = {}
    for path in fs.walk_files("/"):
        if path.startswith("/.bento/"):
            continue
        files[path] = fs.read_file(path)
    inbox = [payload for payload, _peer in instance.api._inbox]
    cp = Checkpoint(
        name=instance.manifest.name,
        entry=instance.manifest.entry,
        image=instance.image.name,
        manifest=instance.manifest.to_wire(),
        code=runtime.code,
        state=state,
        args=list(runtime.last_args or []),
        files=files,
        inbox=inbox,
        seq=int(seq),
        taken_at=instance.server.sim.now,
        measurement=(instance.conclave.measurement
                     if instance.conclave is not None else ""),
    )
    _perf.checkpoints_taken += 1
    return cp


def restore_instance(instance, cp: Optional[Checkpoint], peer,
                     start: bool = False) -> None:
    """Apply a checkpoint to a freshly loaded instance.

    With ``cp=None`` nothing new is staged (a standby promotion re-uses
    the last shipped checkpoint's state, already applied); ``start=True``
    then (re)starts the entry with the staged args.
    """
    runtime = instance.runtime
    if runtime is None:
        raise MigrationError("no function loaded to restore into")
    if cp is not None:
        if cp.name != instance.manifest.name or cp.entry != instance.manifest.entry:
            raise MigrationError(
                f"checkpoint is for {cp.name!r}/{cp.entry!r}, "
                f"not {instance.manifest.name!r}/{instance.manifest.entry!r}")
        if not instance.checkpointable:
            raise NotCheckpointable(
                "loaded function does not export checkpoint()/restore(state)")
        fs = _instance_fs(instance)
        for path, data in cp.files.items():
            current = fs.file_size(path) if fs.exists(path) else 0
            delta = len(data) - current
            if delta > 0:
                instance.container.cgroup.charge("disk", delta)
            fs.write_file(path, bytes(data))
            if delta < 0:
                instance.container.cgroup.charge("disk", delta)
        runtime.restore_state(cp.state)
        runtime.last_args = list(cp.args)
        for payload in cp.inbox:
            instance.api._push_message(payload, peer)
    if start and not runtime.running:
        if runtime.last_args is None:
            raise MigrationError("no staged args to start the entry with")
        runtime.start(list(runtime.last_args), peer)


# -- sealing ---------------------------------------------------------------

def seal_checkpoint(conclave, cp: Checkpoint) -> bytes:
    """Seal a checkpoint under the conclave's measurement+platform key."""
    return seal_data(conclave.enclave.sealing_key(),
                     canonical_encode(cp.to_wire()),
                     aad=cp.measurement.encode("utf-8"))


def unseal_checkpoint(sealing_key: bytes, sealed: bytes,
                      measurement: str) -> Checkpoint:
    """Unseal; raises :class:`SealingError` for the wrong enclave/platform."""
    wire = canonical_decode(unseal_data(sealing_key, sealed,
                                        aad=measurement.encode("utf-8")))
    return Checkpoint.from_wire(wire)


def store_local_checkpoint(instance, cp: Checkpoint) -> None:
    """Seal and persist a checkpoint at rest, with rollback detection.

    The sealed blob goes through FS Protect, whose versioned envelopes
    make a swapped-back older checkpoint raise ``rollback detected``
    instead of loading (§5.4's anti-rollback story).
    """
    if instance.conclave is None:
        raise MigrationError(
            "local sealed checkpoints require a conclave instance")
    instance.conclave.fs.write_file(CHECKPOINT_PATH,
                                    seal_checkpoint(instance.conclave, cp))


def load_local_checkpoint(instance) -> Checkpoint:
    """Read back the locally stored sealed checkpoint."""
    if instance.conclave is None:
        raise MigrationError(
            "local sealed checkpoints require a conclave instance")
    sealed = instance.conclave.fs.read_file(CHECKPOINT_PATH)
    return unseal_checkpoint(instance.conclave.enclave.sealing_key(), sealed,
                             instance.conclave.measurement)
