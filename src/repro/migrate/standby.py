"""Warm standbys: periodic checkpoint shipping with bounded state lag.

A :class:`WarmStandby` is a pre-provisioned clone of a primary function
on another box: same code, same manifest, state refreshed by shipping
checkpoints every ``max_state_lag_s``.  On primary crash the owner (or
the chaos plane's recovery path) **promotes** the standby — it starts
running from the last shipped state immediately, skipping provisioning,
code upload, and state rebuild, which is exactly the recovery-time gap
``bench_migrate.py`` measures against cold respawn.

The shipped state is at most ``max_state_lag_s`` old (plus transfer
time): that is the durability contract, and :meth:`state_lag_s` exposes
the instantaneous lag for monitoring.
"""

from __future__ import annotations

from typing import Optional

from repro.core.errors import BentoError
from repro.netsim.simulator import Actor, Sleep, blocking
from repro.obs.metrics import REGISTRY as _metrics
from repro.obs.span import TRACER as _obs
from repro.perf.counters import counters as _perf


class WarmStandby:
    """One standby replica of a checkpointable function."""

    def __init__(self, client, code: str, manifest,
                 max_state_lag_s: float = 30.0, direct: bool = True) -> None:
        self.client = client
        self.code = code
        self.manifest = manifest
        self.max_state_lag_s = max_state_lag_s
        self.direct = direct
        self.session = None
        self.seq = 0
        self.last_sync_at: Optional[float] = None
        self.promoted = False

    @blocking
    def provision(self, thread: Actor, exclude: tuple = (),
                  timeout: float = 240.0) -> str:
        """Stand the clone up on a slack-rich box (excluding the primary's);
        returns the standby box's fingerprint."""
        box = self.client.pick_box_by_slack(exclude=tuple(exclude))
        if self.direct:
            self.session = yield from self.client.connect_direct(
                thread, box, timeout=timeout)
        else:
            self.session = yield from self.client.connect(thread, box,
                                                          timeout=timeout)
        yield from self.session.request_image(thread, self.manifest.image,
                                              timeout=timeout)
        yield from self.session.load_function(thread, self.code,
                                              self.manifest, timeout=timeout)
        log = _obs.log
        if log is not None:
            log.instant("migrate.standby_up", self.client.sim.now,
                        track=self.client.tor.node.name, box=box.nickname)
        return box.identity_fp

    @blocking
    def sync(self, thread: Actor, primary_session,
             timeout: float = 240.0) -> int:
        """Ship one checkpoint from the primary; returns the new seq."""
        if self.session is None:
            raise BentoError("standby not provisioned")
        cp_wire = yield from primary_session.checkpoint_function(
            thread, seq=self.seq + 1, timeout=timeout)
        yield from self.session.restore_function(thread, cp_wire,
                                                 start=False, timeout=timeout)
        self.seq = int(cp_wire.get("seq", self.seq + 1))
        self.last_sync_at = self.client.sim.now
        return self.seq

    @blocking
    def promote(self, thread: Actor,
                adopt_invocation: Optional[str] = None,
                adopt_shutdown: Optional[str] = None,
                timeout: float = 240.0):
        """The primary is gone: start the standby from its staged state.

        Optionally adopts the dead primary's token pair so capability
        holders keep working.  Returns the standby's (now primary)
        session.
        """
        if self.session is None:
            raise BentoError("standby not provisioned")
        if self.last_sync_at is None:
            raise BentoError("standby never synced; nothing to promote")
        yield from self.session.restore_function(
            thread, None, start=True,
            adopt_invocation=adopt_invocation,
            adopt_shutdown=adopt_shutdown, timeout=timeout)
        self.promoted = True
        _perf.standby_promotions += 1
        _metrics.counter("standby_promotions").value += 1
        log = _obs.log
        if log is not None:
            log.instant("migrate.standby_promoted", self.client.sim.now,
                        track=self.client.tor.node.name,
                        lag_s=self.state_lag_s(self.client.sim.now))
        return self.session

    def state_lag_s(self, now: float) -> float:
        """How stale the standby's state is right now."""
        if self.last_sync_at is None:
            return float("inf")
        return max(0.0, now - self.last_sync_at)

    @blocking
    def run(self, thread: Actor, primary_session) -> None:
        """Ship checkpoints every ``max_state_lag_s`` until promotion or a
        primary failure (which ends the loop; the owner then promotes)."""
        while not self.promoted:
            yield Sleep(self.max_state_lag_s)
            if self.promoted:
                break
            try:
                yield from self.sync(thread, primary_session)
            except Exception:
                break  # primary unreachable: stop shipping, await promote
