"""Drain-then-migrate: moving a live function to another box.

The drain protocol (DESIGN.md §12):

1. **quiesce** — mark the instance draining.  Its ``recv()`` stays parked
   (new client messages queue in the inbox without waking it), so the
   function's state freezes at a message boundary.
2. **checkpoint** — snapshot state + files + queued inbox; inside a
   conclave, also seal the snapshot to local FS Protect (crash insurance
   with rollback detection).
3. **transfer** — pick a destination by serving-plane slack
   (:func:`repro.qos.placement.rank_boxes`), provision + load the same
   code there, and RESTORE over the (attested, end-to-end sealed when
   enclaved) session — adopting the source's token pair so every
   capability holder keeps working.
4. **cut over** — forward any messages that arrived mid-transfer, record
   a ``moved`` tombstone answering stale requests with the destination's
   fingerprint, and kill the local instance gracefully.  Clients chasing
   the tombstone see a bounded pause (retarget + reconnect), never an
   error.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.migrate.checkpoint import (
    MigrationError,
    checkpoint_instance,
    store_local_checkpoint,
)
from repro.netsim.simulator import Actor, Sleep, blocking
from repro.obs.metrics import REGISTRY as _metrics
from repro.obs.span import TRACER as _obs
from repro.perf.counters import counters as _perf


@dataclass(frozen=True)
class MigrationConfig:
    """Knobs for the migration plane (all deterministic)."""

    direct: bool = True            # dial destinations directly (own infra)
    quiesce_poll_s: float = 0.25   # how often to check for the recv() park
    quiesce_timeout_s: float = 60.0
    transfer_timeout_s: float = 240.0
    shed_by_migration: bool = True  # QoS hook: migrate bulk instead of refusing
    min_shed_interval_s: float = 60.0
    max_dest_attempts: int = 3


class MigrationPlane:
    """Per-server driver for drains and shed-by-migration."""

    def __init__(self, server, config: Optional[MigrationConfig] = None) -> None:
        self.server = server
        self.config = config or MigrationConfig()
        # A dedicated fork: plane-off runs never draw from it, so enabling
        # the plane cannot perturb the server's own randomness stream.
        self.rng = server.rng.fork("migrate")
        self._drain_ids = itertools.count(1)
        self._draining = 0
        self._last_shed_at: Optional[float] = None

    # -- draining ----------------------------------------------------------

    @blocking
    def drain(self, thread: Actor, instance,
              dest_fp: Optional[str] = None) -> Optional[str]:
        """Drain ``instance`` to another box; returns the destination
        fingerprint, or None if the drain failed (instance keeps running)."""
        return (yield from self._drain(thread, instance, dest_fp))

    def request_drain(self, instance, dest_fp: Optional[str] = None) -> None:
        """Fire-and-forget drain in its own actor (event-handler safe)."""
        def _actor(task):
            try:
                yield from self._drain(task, instance, dest_fp)
            except Exception:
                pass  # failures are already counted and spanned

        self.server.sim.spawn(
            _actor, name=f"drain:{self.server.relay.nickname}")

    def _drain(self, thread: Actor, instance, dest_fp: Optional[str]):
        server = self.server
        sim = server.sim
        started_at = sim.now
        _perf.migrations_started += 1
        _metrics.counter("migrations_started",
                         {"box": server.relay.nickname}).value += 1
        log = _obs.log
        span = log.begin_span(
            "migrate.drain", sim.now, track=server.relay.nickname,
            instance=instance.instance_id) if log is not None else None
        self._draining += 1

        def fail(why: str):
            _perf.migrations_failed += 1
            _metrics.counter("migrations_failed",
                             {"box": server.relay.nickname}).value += 1
            instance.draining = False
            self._draining -= 1
            if span is not None:
                span.end(sim.now, ok=False, error=why)
            return None

        if instance.terminated:
            return fail("instance already terminated")
        if instance.draining:
            return fail("already draining")
        if not instance.checkpointable:
            return fail("not checkpointable")
        runtime = instance.runtime

        # 1. Quiesce: freeze state at a message boundary.
        instance.draining = True
        deadline = sim.now + self.config.quiesce_timeout_s
        while (runtime.running and instance.api._recv_waiter is None
               and not instance.terminated):
            if sim.now >= deadline:
                return fail("quiesce timeout")
            yield Sleep(self.config.quiesce_poll_s)
        if instance.terminated:
            return fail("instance died while quiescing")

        # 2. Checkpoint (and persist sealed-at-rest inside a conclave).
        try:
            cp = checkpoint_instance(instance)
            if instance.conclave is not None:
                store_local_checkpoint(instance, cp)
        except MigrationError as exc:
            return fail(f"checkpoint failed: {exc}")
        shipped_inbox = len(cp.inbox)

        # 3. Transfer to a slack-rich destination.
        from repro.core.client import RETRYABLE_ERRORS, BentoClient
        from repro.qos.placement import rank_boxes

        drain_id = next(self._drain_ids)
        client = BentoClient(server.tor_client, server.ias,
                             rng=self.rng.fork(f"drain{drain_id}"))
        boxes = [b for b in client.discover_boxes()
                 if b.identity_fp != server.relay.fingerprint]
        if dest_fp is not None:
            boxes = [b for b in boxes if b.identity_fp == dest_fp]
        if not boxes:
            return fail("no destination box available")
        ranked = rank_boxes(boxes, server.directory.load_table())

        session = None
        dest = None
        for box in ranked[:self.config.max_dest_attempts]:
            try:
                session = yield from self._transfer(thread, client, box,
                                                    instance, cp)
            except RETRYABLE_ERRORS:
                session = None
            if session is not None:
                dest = box
                break
        if session is None:
            return fail("every destination attempt failed")

        # 4. Cut over: chase stragglers, tombstone, tear down locally.
        for payload, _peer in instance.api._inbox[shipped_inbox:]:
            session.send_message(payload)
        old = instance.tokens
        server._moved[old.invocation] = dest.identity_fp
        server._moved[old.shutdown] = dest.identity_fp
        # Tell every still-connected client where the function went *now*:
        # a parked next_output() raises FunctionMoved immediately and the
        # retry path retargets, instead of waiting out its own timeout.
        from repro.core import messages
        for peer in instance._peer_order:
            if not peer.closed:
                try:
                    peer.send_frame(messages.error_message(
                        "moved", detail="function migrated",
                        box_fp=dest.identity_fp))
                except Exception:
                    pass
        instance.kill("migrated", graceful=True)
        session.close()
        self._draining -= 1
        recovery_s = sim.now - started_at
        _perf.migrations_completed += 1
        _metrics.counter("migrations_completed",
                         {"box": server.relay.nickname}).value += 1
        _metrics.histogram("migration_recovery_s",
                           {"mode": "drain"}).observe(recovery_s)
        if span is not None:
            span.end(sim.now, ok=True, dest=dest.nickname,
                     recovery_s=recovery_s)
        return dest.identity_fp

    def _transfer(self, thread: Actor, client, box, instance, cp):
        """Provision + load + restore on one candidate box.

        Returns the (token-adopted) session, with the restored entry
        already running when the source was running.
        """
        timeout = self.config.transfer_timeout_s
        if self.config.direct:
            session = yield from client.connect_direct(thread, box,
                                                       timeout=timeout)
        else:
            session = yield from client.connect(thread, box, timeout=timeout)
        yield from session.request_image(thread, instance.image.name,
                                         timeout=timeout)
        yield from session.load_function(thread, instance.runtime.code,
                                         instance.manifest, timeout=timeout)
        yield from session.restore_function(
            thread, cp.to_wire(), start=instance.runtime.running,
            adopt_invocation=instance.tokens.invocation,
            adopt_shutdown=instance.tokens.shutdown, timeout=timeout)
        return session

    # -- QoS hook: shed by migrating, not refusing -------------------------

    def maybe_shed(self) -> bool:
        """Called by the serving plane on a shedding rising edge: move one
        bulk tenant to a slack-rich box instead of refusing work here.
        Rate-limited; returns True when a drain was kicked off."""
        if not self.config.shed_by_migration or self._draining:
            return False
        now = self.server.sim.now
        if (self._last_shed_at is not None
                and now - self._last_shed_at < self.config.min_shed_interval_s):
            return False
        victim = self._pick_shed_victim()
        if victim is None:
            return False
        self._last_shed_at = now
        log = _obs.log
        if log is not None:
            log.instant("migrate.shed", now,
                        track=self.server.relay.nickname,
                        instance=victim.instance_id)
        self.request_drain(victim)
        return True

    def _pick_shed_victim(self):
        """The migratable bulk instance with the smallest id (stable)."""
        candidates = []
        for instance in self.server._by_invocation.values():
            if instance.terminated or instance.draining:
                continue
            if not instance.checkpointable:
                continue
            manifest = instance.manifest
            if manifest is not None and getattr(manifest, "priority",
                                                "bulk") == "interactive":
                continue  # never shed interactive tenants by force
            candidates.append(instance)
        if not candidates:
            return None
        return min(candidates,
                   key=lambda i: (len(i.instance_id), i.instance_id))
