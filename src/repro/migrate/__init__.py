"""The migration plane: sealed checkpoint/restore, drains, warm standbys.

Opt-in like every plane: pass ``migrate=MigrationConfig()`` to
:class:`~repro.core.server.BentoServer` to enable drain-then-migrate on a
box; default runs import nothing from here and stay bit-identical.
"""

from repro.migrate.checkpoint import (
    CHECKPOINT_PATH,
    Checkpoint,
    MigrationError,
    NotCheckpointable,
    checkpoint_instance,
    load_local_checkpoint,
    restore_instance,
    seal_checkpoint,
    store_local_checkpoint,
    unseal_checkpoint,
)
from repro.migrate.plane import MigrationConfig, MigrationPlane
from repro.migrate.standby import WarmStandby


def checkpointable_functions() -> dict:
    """Every in-tree function exporting the checkpoint protocol, as
    ``name -> (source, manifest)`` — the property-test inventory."""
    from repro.functions.kvstore import KvStoreFunction

    inventory = {
        "kvstore": (KvStoreFunction.SOURCE, KvStoreFunction.manifest()),
    }
    return inventory


__all__ = [
    "CHECKPOINT_PATH",
    "Checkpoint",
    "MigrationConfig",
    "MigrationError",
    "MigrationPlane",
    "NotCheckpointable",
    "WarmStandby",
    "checkpoint_instance",
    "checkpointable_functions",
    "load_local_checkpoint",
    "restore_instance",
    "seal_checkpoint",
    "store_local_checkpoint",
    "unseal_checkpoint",
]
