"""Chain plane: service graphs as the unit of deployment.

The template/overlay split after B-JointSP (see ``DESIGN.md`` §15):

* :mod:`repro.chain.template` — :class:`ChainSpec` manifests: components
  with cpu/memory demand and statefulness, directed arcs with per-arc
  rates, strict validation, canonical digests;
* :mod:`repro.chain.embed` — the joint scaling-and-placement engine that
  turns a template into an :class:`Overlay` against the QoS directory's
  advertised slack, plus the greedy per-function baseline;
* :mod:`repro.chain.deploy` — the orchestrator realizing an overlay
  through real attested sessions, routing per-arc traffic, and
  re-embedding around failures via the migrate plane.

Entirely opt-in: nothing here is imported by the core stack, and the
``chain_*`` perf counters stay zero unless a chain is deployed.
"""

from repro.chain.deploy import (ChainDeployError, ChainDeployment,
                                ChainStageFunction)
from repro.chain.embed import (EmbedConfig, EmbedError, Overlay, embed,
                               greedy_embed)
from repro.chain.template import (ArcSpec, ChainSpec, ChainSpecError,
                                  ComponentSpec, apply_transform,
                                  fanout_chain, pipeline_chain)

__all__ = [
    "ArcSpec", "ChainSpec", "ChainSpecError", "ComponentSpec",
    "apply_transform", "fanout_chain", "pipeline_chain",
    "EmbedConfig", "EmbedError", "Overlay", "embed", "greedy_embed",
    "ChainDeployError", "ChainDeployment", "ChainStageFunction",
]
