"""Joint scaling-and-placement: turn a chain template into an overlay.

The embedding problem, after B-JointSP: given a :class:`ChainSpec`
template, the candidate Bento boxes, and the QoS directory's advertised
load reports, decide **jointly** (a) how many replicas each component
needs, (b) which box each replica runs on, and (c) how each template arc
routes between concrete replicas.  The result is an :class:`Overlay` —
plain data with a canonical digest, so the same inputs embed
bit-identically every time (no RNG anywhere below).

Two engines live here:

* :func:`embed` — the **joint** engine.  Replica counts come from the
  component's ingress rate against its per-replica capacity; placement
  walks the graph in deterministic embed order, spending a *capacity
  ledger* (admission slots and advertised memory debited as replicas
  land), with anti-affinity so a component's replicas spread across
  boxes.  Because the ledger is spent as the walk proceeds, the decision
  for a downstream component sees the load its upstream neighbors just
  created — the "joint" in joint placement.
* :func:`greedy_embed` — the **per-function baseline** kept as the
  ablation contrast: one replica per component, each placed
  independently by :func:`repro.qos.placement.pick_box_by_slack` against
  the *static* load table.  Every function sees the same emptiest box and
  piles onto it — exactly the collapse the benchmark measures.

The objective the joint engine minimizes (lexicographically): first the
peak per-box offered rate (the saturated box is where chain goodput
dies), then cross-box arc traffic, then fingerprint order for stability.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass
from typing import Mapping, Optional, Sequence

from repro.chain.template import ChainSpec, ChainSpecError
from repro.qos.placement import pick_box_by_slack
from repro.util.serialization import canonical_encode

__all__ = ["EmbedConfig", "Replica", "Flow", "Overlay", "EmbedError",
           "embed", "greedy_embed"]


class EmbedError(ChainSpecError):
    """No feasible overlay exists for this template on these boxes."""


@dataclass(frozen=True)
class EmbedConfig:
    """Knobs for the joint engine (all deterministic).

    ``default_slots`` / ``default_mem_bytes`` stand in for boxes that
    have never advertised a load report (not running the serving plane,
    or never busy).  ``headroom`` scales required replica capacity:
    1.0 sizes exactly to the offered rate, higher values over-provision.
    """

    default_slots: int = 8
    default_mem_bytes: int = 64 * 1024 * 1024
    headroom: float = 1.0
    max_replicas_per_box: Optional[int] = None

    def __post_init__(self) -> None:
        if self.default_slots < 1:
            raise EmbedError("default_slots must be >= 1")
        if self.headroom < 1.0:
            raise EmbedError("headroom must be >= 1.0")


@dataclass(frozen=True)
class Replica:
    """One placed instance of a component."""

    component: str
    index: int
    box_fp: str


@dataclass(frozen=True)
class Flow:
    """One routed slice of a template arc between concrete replicas."""

    arc: str
    src_index: int
    dst_index: int
    rate_units_per_s: float


@dataclass(frozen=True)
class Overlay:
    """A realized chain: replicas, routes, and the placement score."""

    chain: str
    chain_digest: str
    engine: str                       # "joint" | "greedy"
    replicas: tuple[Replica, ...]
    flows: tuple[Flow, ...]
    objective: dict

    def replicas_of(self, component: str) -> list[Replica]:
        return [r for r in self.replicas if r.component == component]

    def flows_of(self, arc_key: str) -> list[Flow]:
        return [f for f in self.flows if f.arc == arc_key]

    def boxes_used(self) -> list[str]:
        return sorted({r.box_fp for r in self.replicas})

    def to_dict(self) -> dict:
        return {
            "chain": self.chain,
            "chain_digest": self.chain_digest,
            "engine": self.engine,
            "replicas": [asdict(r) for r in self.replicas],
            "flows": [asdict(f) for f in self.flows],
            "objective": dict(self.objective),
        }

    def digest(self) -> str:
        """Canonical identity: same inputs must reproduce these bytes."""
        return hashlib.sha256(canonical_encode(self.to_dict())).hexdigest()


def _box_budget(fp: str, load_table: Mapping[str, dict],
                config: EmbedConfig) -> dict:
    """The ledger line for one box: what the directory says is free."""
    report = load_table.get(fp)
    if report is None:
        return {"slots": config.default_slots,
                "mem": config.default_mem_bytes,
                "queue": 0, "shedding": False, "rate": 0.0, "placed": 0}
    return {"slots": int(report.get("slots_free", 0)),
            "mem": int(report.get("mem_free", config.default_mem_bytes)),
            "queue": int(report.get("queue_len", 0)),
            "shedding": bool(report.get("shedding", False)),
            "rate": 0.0, "placed": 0}


def _replica_count(spec: ChainSpec, component: str,
                   config: EmbedConfig) -> int:
    comp = spec.component(component)
    if comp.stateful:
        return 1
    demand = spec.ingress_units_per_s(component) * config.headroom
    # Integer ceil over micro-units: float-division-free, so the count is
    # reproducible to the bit on any platform.
    denom = max(1, int(comp.capacity_units_per_s * 1_000_000))
    need = max(1, -(-int(demand * 1_000_000) // denom))
    return min(need, comp.max_replicas)


def embed(spec: ChainSpec, boxes: Sequence, load_table: Mapping[str, dict],
          config: Optional[EmbedConfig] = None,
          exclude_fps: Sequence[str] = (),
          pinned: Optional[Mapping[tuple[str, int], str]] = None) -> Overlay:
    """The joint engine: scale out and place against a spent ledger.

    ``exclude_fps`` removes boxes (crashed, draining) from consideration.
    ``pinned`` maps ``(component, replica_index) -> box_fp`` assignments
    that must survive — re-embedding after a failure pins every replica
    on a still-healthy box so only the broken ones move.
    """
    config = config or EmbedConfig()
    pinned = dict(pinned or {})
    excluded = set(exclude_fps)
    candidates = sorted((b for b in boxes
                         if b.identity_fp not in excluded),
                        key=lambda b: b.identity_fp)
    if not candidates:
        raise EmbedError("no candidate boxes to embed on")
    ledger = {b.identity_fp: _box_budget(b.identity_fp, load_table, config)
              for b in candidates}
    for key, fp in pinned.items():
        if fp in excluded or fp not in ledger:
            raise EmbedError(f"pinned replica {key} sits on an excluded "
                             f"or unknown box {fp}")

    order = spec.embed_order()
    counts = {name: _replica_count(spec, name, config) for name in order}
    placements: dict[tuple[str, int], str] = {}
    replicas: list[Replica] = []

    for name in order:
        comp = spec.component(name)
        n = counts[name]
        share = spec.ingress_units_per_s(name) / n
        for index in range(n):
            fp = pinned.get((name, index))
            if fp is None:
                fp = _pick(ledger, name, comp, placements, config)
            line = ledger[fp]
            line["slots"] -= 1
            line["mem"] -= comp.memory_bytes
            line["rate"] += share
            line["placed"] += 1
            placements[(name, index)] = fp
            replicas.append(Replica(component=name, index=index, box_fp=fp))

    flows = _route(spec, counts)
    objective = _score(spec, counts, placements, ledger)
    return Overlay(chain=spec.name, chain_digest=spec.digest(),
                   engine="joint", replicas=tuple(replicas),
                   flows=tuple(flows), objective=objective)


def _pick(ledger: dict, name: str, comp, placements: dict,
          config: EmbedConfig) -> str:
    """The most attractive box for the next replica of ``name``.

    Ranking (ascending = better): non-shedding first, then boxes not
    already hosting this component (spread replicas for availability),
    then the lowest offered rate so far, then the most remaining slots,
    then the shortest queue, then fingerprint — every key is derived
    from the ledger this embedding is itself spending, never from dict
    iteration order.
    """
    sibling_boxes = {fp for (cname, _i), fp in placements.items()
                     if cname == name}

    def key(item):
        fp, line = item
        return (1 if line["shedding"] else 0,
                1 if fp in sibling_boxes else 0,
                line["rate"],
                -line["slots"],
                line["queue"],
                fp)

    usable = [(fp, line) for fp, line in sorted(ledger.items())
              if line["slots"] >= 1 and line["mem"] >= comp.memory_bytes
              and (config.max_replicas_per_box is None
                   or line["placed"] < config.max_replicas_per_box)]
    if not usable:
        # Capacity exhausted everywhere: fall back to least-loaded
        # overcommit rather than failing the whole chain.
        usable = list(sorted(ledger.items()))
        if not usable:
            raise EmbedError(f"no box can host component {name!r}")
    return min(usable, key=key)[0]


def greedy_embed(spec: ChainSpec, boxes: Sequence,
                 load_table: Mapping[str, dict]) -> Overlay:
    """The per-function baseline: no ledger, no scaling, no jointness.

    Each component independently asks "which box has the most advertised
    slack **right now**?" — the same static answer for all of them — and
    deploys a single replica there.  This is what deploying the chain as
    N unrelated Bento functions does today, and the ablation the joint
    engine is benchmarked against.
    """
    candidates = sorted(boxes, key=lambda b: b.identity_fp)
    if not candidates:
        raise EmbedError("no candidate boxes to embed on")
    replicas = []
    placements: dict[tuple[str, int], str] = {}
    order = spec.embed_order()
    for name in order:
        box = pick_box_by_slack(candidates, dict(load_table))
        placements[(name, 0)] = box.identity_fp
        replicas.append(Replica(component=name, index=0,
                                box_fp=box.identity_fp))
    counts = {name: 1 for name in order}
    flows = _route(spec, counts)
    ledger = {b.identity_fp: _box_budget(b.identity_fp, load_table,
                                         EmbedConfig())
              for b in candidates}
    for (name, _i), fp in placements.items():
        line = ledger[fp]
        line["rate"] += spec.ingress_units_per_s(name)
        line["placed"] += 1
    objective = _score(spec, counts, placements, ledger)
    return Overlay(chain=spec.name, chain_digest=spec.digest(),
                   engine="greedy", replicas=tuple(replicas),
                   flows=tuple(flows), objective=objective)


def _route(spec: ChainSpec, counts: Mapping[str, int]) -> list[Flow]:
    """Split every arc across replica pairs, deterministically.

    A ``split`` arc divides its rate evenly over (src, dst) replica
    pairs; a ``copy`` arc delivers each unit to one dst replica per
    source unit but every unit traverses the arc, so the rate divides
    over source replicas only.
    """
    flows: list[Flow] = []
    for arc in spec.arcs:
        n_src = counts[arc.src]
        n_dst = counts[arc.dst]
        per_pair = arc.rate_units_per_s / (n_src * n_dst)
        for i in range(n_src):
            for j in range(n_dst):
                flows.append(Flow(arc=arc.key, src_index=i, dst_index=j,
                                  rate_units_per_s=round(per_pair, 9)))
    return flows


def _score(spec: ChainSpec, counts: Mapping[str, int],
           placements: Mapping[tuple[str, int], str],
           ledger: Mapping[str, dict]) -> dict:
    """The objective line the benchmark reports as placement quality."""
    per_box: dict[str, float] = {}
    for (name, _i), fp in placements.items():
        share = spec.ingress_units_per_s(name) / counts[name]
        per_box[fp] = per_box.get(fp, 0.0) + share
    cross = 0.0
    for arc in spec.arcs:
        n_src, n_dst = counts[arc.src], counts[arc.dst]
        per_pair = arc.rate_units_per_s / (n_src * n_dst)
        factor = 2.0 if arc.bidirectional else 1.0
        for i in range(n_src):
            for j in range(n_dst):
                if placements[(arc.src, i)] != placements[(arc.dst, j)]:
                    cross += per_pair * arc.unit_bytes * factor
    total_replicas = sum(counts.values())
    return {
        "replicas": total_replicas,
        "boxes_used": len(per_box),
        "peak_box_units_per_s": round(max(per_box.values()), 9)
        if per_box else 0.0,
        "cross_box_bytes_per_s": round(cross, 6),
        "replica_counts": {name: counts[name] for name in sorted(counts)},
    }
