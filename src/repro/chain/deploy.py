"""Realize an overlay through the real Bento stack, and keep it alive.

:class:`ChainDeployment` takes a :class:`~repro.chain.template.ChainSpec`
plus an :class:`~repro.chain.embed.Overlay` (computed on demand from the
QoS directory's advertised slack) and drives the actual machinery end to
end: every replica is a real attested Bento session (``connect_direct``
→ ``request_image`` → ``load_function`` → invoke), every traffic unit is
real bytes through those sessions, and every failure goes through the
planes that already exist rather than private recovery code:

* **fan-out arcs** route with the LoadBalancer's wiring discipline —
  ``split`` arcs weighted-round-robin units across downstream replicas
  and arcs, ``copy`` arcs scatter a copy down every edge (the Shard
  pattern);
* **failures re-embed**: a dead or refusing box is excluded, the joint
  engine recomputes the overlay with every healthy replica *pinned* in
  place, and replicas that must move are handed to the migrate plane's
  drain-then-migrate (state travels, tokens are adopted, the session
  just retargets) — cold respawn is the fallback only when the source
  box is already gone.

The deployed stage function exports ``checkpoint()``/``restore()``, so
every chain component is migratable by construction.
"""

from __future__ import annotations

import time as _time
from typing import Mapping, Optional, Sequence

from repro.chain.embed import EmbedConfig, Overlay, embed, greedy_embed
from repro.chain.template import ChainSpec, ChainSpecError, apply_transform
from repro.core.errors import ServerBusy
from repro.core.manifest import FunctionManifest
from repro.netsim.simulator import Actor, Sleep, blocking
from repro.obs.metrics import REGISTRY as _metrics
from repro.obs.span import TRACER as _obs
from repro.perf.counters import counters as _perf

__all__ = ["CHAIN_STAGE_SOURCE", "ChainStageFunction", "ChainDeployment",
           "ChainDeployError", "UnitDeadline"]


class ChainDeployError(ChainSpecError):
    """Deploying or driving the chain failed terminally."""


class UnitDeadline(ChainDeployError):
    """A traffic unit missed its deadline (not a box failure)."""


class _StageFailure(Exception):
    """Internal: one stage op failed; carries the suspect box."""

    def __init__(self, component: str, index: int, box_fp: str,
                 cause: BaseException) -> None:
        super().__init__(f"{component}[{index}] on {box_fp}: {cause}")
        self.component = component
        self.index = index
        self.box_fp = box_fp
        self.cause = cause


#: The generic chain stage: apply this component's transform to each
#: unit and send it back.  Exports the checkpoint protocol (config and
#: progress counters survive a drain), mirrors
#: :func:`repro.chain.template.apply_transform` exactly, and treats a
#: leading ``C`` byte as the stop control.
CHAIN_STAGE_SOURCE = r'''
import json

_cfg = {}
_state = {"processed": 0, "bytes_out": 0}

def checkpoint():
    return {"cfg": dict(_cfg), "state": dict(_state)}

def restore(saved):
    _cfg.clear()
    _cfg.update(saved["cfg"])
    _state.clear()
    _state.update(saved["state"])

def _apply(transform, unit):
    kind, _sep, arg = transform.partition(":")
    if kind == "pad":
        return unit + bytes(int(arg))
    if kind == "strip":
        return unit[:-int(arg)]
    if kind == "xor":
        key = int(arg)
        return bytes(b ^ key for b in unit)
    return unit

def stage(transform, work_ms):
    if not _cfg:
        _cfg["transform"] = transform
        _cfg["work_ms"] = float(work_ms)
    while True:
        raw = yield from api.recv()
        if raw[:1] == b"C":
            break
        if _cfg["work_ms"] > 0:
            yield from api.sleep(_cfg["work_ms"] / 1000.0)
        out = _apply(_cfg["transform"], raw[1:])
        _state["processed"] += 1
        _state["bytes_out"] += len(out)
        yield from api.send(b"U" + out)
    return dict(_state)
'''


class ChainStageFunction:
    """Host-side face of the generic stage (manifest + wire framing)."""

    SOURCE = CHAIN_STAGE_SOURCE
    API_CALLS = frozenset({"send", "recv", "sleep"})

    @classmethod
    def manifest(cls, component, image: str = "python") -> FunctionManifest:
        return FunctionManifest.create(
            name=f"chain-{component.name}", entry="stage",
            api_calls=cls.API_CALLS, image=image,
            memory_bytes=component.memory_bytes)


class ChainDeployment:
    """One deployed chain: sessions per replica, routing, re-embedding.

    ``client`` is the operator's :class:`~repro.core.client.BentoClient`
    (it owns one direct session per replica, the way a LoadBalancer owns
    its replica fleet).  ``servers`` optionally maps box fingerprints to
    their in-process :class:`~repro.core.server.BentoServer` so a
    re-embed can delegate moves to each box's migrate plane; without it
    (or without the plane) moves fall back to cold respawn.
    """

    def __init__(self, client, spec: ChainSpec, *,
                 config: Optional[EmbedConfig] = None,
                 servers: Optional[Mapping[str, object]] = None,
                 image: str = "python",
                 reembed_on_failure: bool = True) -> None:
        self.client = client
        self.sim = client.sim
        self.spec = spec
        self.config = config or EmbedConfig()
        self.servers = dict(servers or {})
        self.image = image
        self.reembed_on_failure = reembed_on_failure
        self.overlay: Optional[Overlay] = None
        self.units_pushed = 0
        self.units_delivered = 0
        self.reembeds = 0
        self._sessions: dict[tuple[str, int], object] = {}
        self._busy: dict[tuple[str, int], bool] = {}
        self._replica_cursor: dict[str, int] = {}
        self._split_cursor: dict[str, int] = {}
        self._excluded: set[str] = set()

    # -- embedding ---------------------------------------------------------

    def compute_overlay(self, engine: str = "joint",
                        exclude_fps: Sequence[str] = (),
                        pinned: Optional[Mapping] = None) -> Overlay:
        """Embed the template against the directory's current view."""
        exclude = set(exclude_fps) | self._excluded
        boxes = [b for b in self.client.discover_boxes()
                 if b.identity_fp not in exclude]
        table = self.client.tor.directory.load_table()
        wall = _time.perf_counter()
        if engine == "joint":
            overlay = embed(self.spec, boxes, table, self.config,
                            pinned=pinned)
        elif engine == "greedy":
            overlay = greedy_embed(self.spec, boxes, table)
        else:
            raise ChainDeployError(f"unknown embed engine {engine!r}")
        _perf.chain_embeds += 1
        _metrics.counter("chain_embeds", {"engine": engine}).value += 1
        _metrics.histogram("chain_embed_s").observe(
            _time.perf_counter() - wall)
        self.overlay = overlay
        return overlay

    # -- deployment --------------------------------------------------------

    @blocking
    def deploy(self, task: Actor, engine: str = "joint"):
        """Provision every replica of the overlay (embedding on demand)."""
        if self.overlay is None:
            self.compute_overlay(engine=engine)
        log = _obs.log
        span = log.begin_span("chain.deploy", self.sim.now,
                              track=self.client.tor.node.name,
                              chain=self.spec.name,
                              engine=self.overlay.engine) if log else None
        for replica in self.overlay.replicas:
            yield from self._provision(task, replica.component,
                                       replica.index, replica.box_fp)
        if span is not None:
            span.end(self.sim.now, replicas=len(self.overlay.replicas),
                     boxes=len(self.overlay.boxes_used()))

    def _descriptor(self, box_fp: str):
        for box in self.client.discover_boxes():
            if box.identity_fp == box_fp:
                return box
        raise ChainDeployError(f"box {box_fp} not in the consensus")

    @blocking
    def _provision(self, task: Actor, component: str, index: int,
                   box_fp: str):
        comp = self.spec.component(component)
        box = self._descriptor(box_fp)
        session = yield from self.client.connect_direct(task, box)
        try:
            yield from session.request_image(task, self.image,
                                             verify="none")
            yield from session.load_function(
                task, ChainStageFunction.SOURCE,
                ChainStageFunction.manifest(comp, image=self.image))
            session.invoke_nowait([comp.transform, comp.cpu_ms_per_unit])
        except BaseException:
            session.close()
            raise
        old = self._sessions.get((component, index))
        if old is not None:
            old.close()
        self._sessions[(component, index)] = session
        self._busy[(component, index)] = False

    # -- traffic -----------------------------------------------------------

    @blocking
    def push(self, task: Actor, payload: bytes,
             deadline_s: float = 60.0, _retrying: bool = False) -> dict:
        """Route one traffic unit through the chain.

        Returns ``{sink_name: output_bytes}`` for every sink the unit
        reached.  A box failure mid-unit triggers one re-embed (healthy
        replicas pinned, movers drained or respawned) and one retry from
        the top; a second failure propagates.
        """
        if self.overlay is None:
            raise ChainDeployError("push before deploy")
        if len(self.spec.sources) != 1:
            raise ChainDeployError("push needs a single-source chain")
        self.units_pushed += 1 if not _retrying else 0
        deadline_at = self.sim.now + deadline_s
        try:
            outputs = yield from self._traverse(
                task, self.spec.sources[0], payload, deadline_at)
        except _StageFailure as failure:
            if _retrying or not self.reembed_on_failure:
                raise ChainDeployError(str(failure)) from failure.cause
            exclude = ()
            if not isinstance(failure.cause, ServerBusy):
                exclude = (failure.box_fp,)
            yield from self.reembed(task, exclude_fps=exclude)
            return (yield from self.push(task, payload,
                                         deadline_s=deadline_at - self.sim.now,
                                         _retrying=True))
        self.units_delivered += 1
        _perf.chain_units_delivered += 1
        return outputs

    def _pick_replica(self, component: str) -> int:
        """Round-robin over the component's replicas (LB wiring)."""
        n = len(self.overlay.replicas_of(component))
        cursor = self._replica_cursor.get(component, 0)
        self._replica_cursor[component] = cursor + 1
        return cursor % n

    def _pick_split_arc(self, component: str, arcs):
        """Weighted round-robin across a component's split arcs."""
        if len(arcs) == 1:
            return arcs[0]
        weights = [a.rate_units_per_s for a in arcs]
        total = sum(weights)
        tick = self._split_cursor.get(component, 0)
        self._split_cursor[component] = tick + 1
        # Deterministic low-discrepancy walk over the arc shares.
        point = (tick * total / len(arcs)) % total
        acc = 0.0
        for arc, weight in zip(arcs, weights):
            acc += weight
            if point < acc:
                return arc
        return arcs[-1]

    def _traverse(self, task: Actor, component: str, unit: bytes,
                  deadline_at: float):
        index = self._pick_replica(component)
        out = yield from self._stage_op(task, component, index, unit,
                                        deadline_at)
        arcs = sorted(self.spec.arcs_out(component), key=lambda a: a.key)
        if not arcs:
            return {component: out}
        split_arcs = [a for a in arcs if a.mode == "split"]
        copy_arcs = [a for a in arcs if a.mode == "copy"]
        chosen = []
        if split_arcs:
            chosen.append(self._pick_split_arc(component, split_arcs))
        chosen.extend(copy_arcs)
        outputs: dict = {}
        for arc in chosen:
            nbytes = len(out)
            _perf.chain_arc_bytes += nbytes
            _metrics.counter("chain_arc_bytes", {"arc": arc.key}).value \
                += nbytes
            sub = yield from self._traverse(task, arc.dst, out, deadline_at)
            outputs.update(sub)
        return outputs

    @blocking
    def _stage_op(self, task: Actor, component: str, index: int,
                  unit: bytes, deadline_at: float) -> bytes:
        key = (component, index)
        session = self._sessions.get(key)
        if session is None:
            raise ChainDeployError(f"no session for {component}[{index}]")
        # One in-flight unit per replica session: outputs are answered in
        # order, so interleaving two units would cross their replies.
        while self._busy[key]:
            if self.sim.now >= deadline_at:
                raise UnitDeadline(f"{component}[{index}] queue wait "
                                   f"passed the unit deadline")
            yield Sleep(0.05)
        self._busy[key] = True
        try:
            timeout = deadline_at - self.sim.now
            if timeout <= 0:
                raise UnitDeadline(f"unit hit {component}[{index}] after "
                                   f"its deadline")
            from repro.core.client import RETRYABLE_ERRORS

            def one_op():
                session.send_message(b"U" + unit)
                return session.next_output(task, timeout=timeout)

            try:
                reply = yield from self.client.retrying(
                    task, one_op, attempts=2, backoff_s=0.5,
                    session=session)
            except RETRYABLE_ERRORS as exc:
                # A timed-out read may still have a reply in flight;
                # drop the stream so the next unit on this session
                # cannot read this unit's late frame.
                session.drop_transport()
                raise _StageFailure(component, index,
                                    session.box.identity_fp, exc) from exc
            if reply[:1] != b"U":
                raise ChainDeployError(f"{component}[{index}] returned a "
                                       f"non-unit frame")
            return bytes(reply[1:])
        finally:
            self._busy[key] = False

    # -- failure handling --------------------------------------------------

    @blocking
    def reembed(self, task: Actor, exclude_fps: Sequence[str] = ()):
        """Recompute the overlay and move only what must move.

        Stateful replicas on live boxes are pinned where they are — their
        state anchors them, and only the migrate plane may relocate a
        stateful component.  Stateless replicas re-place freely against
        the post-failure ledger.  A replica whose box is excluded
        (crashed) respawns cold on its new box; a replica the new overlay
        relocates off a *live* box is drained through that box's migrate
        plane — state ships sealed, the destination adopts the tokens,
        and this side just retargets the session.
        """
        self._excluded.update(exclude_fps)
        self.reembeds += 1
        _perf.chain_reembeds += 1
        _metrics.counter("chain_reembeds").value += 1
        log = _obs.log
        if log is not None:
            log.instant("chain.reembed", self.sim.now,
                        track=self.client.tor.node.name,
                        chain=self.spec.name,
                        excluded=sorted(self._excluded))
        old = {(r.component, r.index): r.box_fp
               for r in self.overlay.replicas}
        pinned = {key: fp for key, fp in old.items()
                  if fp not in self._excluded
                  and self.spec.component(key[0]).stateful}
        self.compute_overlay(engine="joint", pinned=pinned)
        for replica in self.overlay.replicas:
            key = (replica.component, replica.index)
            old_fp = old.get(key)
            if old_fp == replica.box_fp:
                continue
            moved = False
            if old_fp is not None and old_fp not in self._excluded:
                moved = yield from self._migrate_replica(
                    task, key, old_fp, replica.box_fp)
            if not moved:
                yield from self.client.retrying(
                    task,
                    lambda key=key, fp=replica.box_fp: self._provision(
                        task, key[0], key[1], fp),
                    attempts=3, backoff_s=1.0)

    @blocking
    def _migrate_replica(self, task: Actor, key: tuple[str, int],
                         old_fp: str, new_fp: str) -> bool:
        """Drain one replica via its source box's migrate plane."""
        server = self.servers.get(old_fp)
        session = self._sessions.get(key)
        if server is None or session is None \
                or getattr(server, "migrate", None) is None:
            return False
        instance = server._by_invocation.get(session.invocation_token)
        if instance is None or instance.terminated \
                or not instance.checkpointable:
            return False
        dest = yield from server.migrate.drain(task, instance,
                                               dest_fp=new_fp)
        if dest is None:
            return False
        from repro.core.client import RETRYABLE_ERRORS
        try:
            session.retarget(dest)
            yield from session.reconnect(task)
        except RETRYABLE_ERRORS:
            return False
        return True

    # -- verification and teardown -----------------------------------------

    def expected_outputs(self, payload: bytes) -> dict:
        """The oracle: what each sink must emit for ``payload``."""
        return {sink: _fold(self.spec.path_transforms(sink), payload)
                for sink in self.spec.sinks}

    @blocking
    def shutdown(self, task: Actor) -> dict:
        """Stop every stage; returns per-replica processed counts."""
        stats: dict = {}
        from repro.core.client import RETRYABLE_ERRORS
        from repro.core import messages
        for key in sorted(self._sessions):
            session = self._sessions[key]
            label = f"{key[0]}[{key[1]}]"
            try:
                session.send_message(b"C")
                done = yield from session.await_message(
                    task, messages.DONE, timeout=60.0)
                stats[label] = done.get("result")
                yield from session.shutdown(task, timeout=60.0)
            except RETRYABLE_ERRORS:
                stats[label] = None
            finally:
                session.close()
        self._sessions.clear()
        return stats


def _fold(transforms, payload: bytes) -> bytes:
    for transform in transforms:
        payload = apply_transform(transform, payload)
    return payload
