"""Chain templates: the service graph as the unit of deployment.

Bento deploys and attests *single* functions, but the paper's composite
scenarios — Cover fronting a Browser defense, a LoadBalancer fanning out
to sharded Dropboxes — are service *chains*.  A :class:`ChainSpec` is the
declarative manifest for one such chain, in the template/overlay style of
B-JointSP: the **template** says what the service is (components with
cpu/memory demand and statefulness, directed arcs with per-arc data
rates, sources and sinks); the **overlay** (:mod:`repro.chain.embed`)
says how it is realized right now (replica counts, box placement, arc
routing).

Like :class:`~repro.workload.spec.WorkloadSpec`, templates are plain data
end to end:

* :meth:`ChainSpec.to_dict` / :meth:`~ChainSpec.from_dict` round-trip
  losslessly, and :meth:`~ChainSpec.to_json` / :meth:`~ChainSpec.from_json`
  make the template a reviewable text file;
* :meth:`ChainSpec.digest` hashes the canonical encoding, so two
  templates describe the same service iff their digests match;
* parsing is **strict** — unknown keys, dangling arcs, zero-rate arcs,
  and (unless explicitly allowed) cycles raise :class:`ChainSpecError`
  instead of deploying a graph you did not mean to run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Mapping

from repro.util.errors import ReproError
from repro.util.serialization import canonical_encode

__all__ = [
    "ARC_MODES", "TRANSFORMS",
    "ComponentSpec", "ArcSpec", "ChainSpec", "ChainSpecError",
    "apply_transform", "pipeline_chain", "fanout_chain",
]

MB = 1024 * 1024

#: Fan-out semantics of a component's *outgoing* arcs: ``split``
#: partitions traffic units across the arcs by rate share (LoadBalancer
#: wiring), ``copy`` duplicates every unit down the arc (Shard-style
#: scatter wiring).
ARC_MODES = ("split", "copy")

#: Per-unit transforms a component may apply; parameterized forms carry
#: an integer argument after a colon (``pad:256``, ``strip:256``,
#: ``xor:90``).  ``relay`` forwards the unit untouched.
TRANSFORMS = ("relay", "pad", "strip", "xor")


class ChainSpecError(ReproError):
    """A chain template failed validation or could not be parsed."""


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ChainSpecError(message)


def _from_mapping(cls, data: Mapping[str, Any], context: str):
    """Strict dataclass hydration: unknown keys are errors."""
    _require(isinstance(data, Mapping),
             f"{context}: expected a mapping, got {type(data).__name__}")
    known = {f.name: f for f in fields(cls)}
    unknown = sorted(set(data) - set(known))
    _require(not unknown, f"{context}: unknown keys {unknown}")
    kwargs: dict[str, Any] = {}
    for name, value in data.items():
        kind = known[name].type
        if kind == "float" and isinstance(value, (int, float)) \
                and not isinstance(value, bool):
            value = float(value)
        kwargs[name] = value
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ChainSpecError(f"{context}: {exc}") from exc


def _parse_transform(transform: str) -> tuple[str, int]:
    """``("pad", 256)`` for ``"pad:256"``; raises on malformed forms."""
    kind, _sep, arg = transform.partition(":")
    _require(kind in TRANSFORMS,
             f"transform must be one of {TRANSFORMS}, got {transform!r}")
    if kind == "relay":
        _require(not arg, "relay takes no argument")
        return kind, 0
    _require(arg.isdigit(), f"transform {transform!r} needs an integer "
             f"argument (e.g. '{kind}:16')")
    value = int(arg)
    _require(value >= 1, f"transform {transform!r} argument must be >= 1")
    if kind == "xor":
        _require(value <= 255, "xor argument must fit one byte")
    return kind, value


def apply_transform(transform: str, unit: bytes) -> bytes:
    """What one component does to one traffic unit (host-side oracle).

    The deployed stage function applies exactly this, so end-to-end
    correctness of a chain is checkable: the sink's output must equal the
    source payload with every path component's transform folded in.
    """
    kind, arg = _parse_transform(transform)
    if kind == "relay":
        return unit
    if kind == "pad":
        return unit + bytes(arg)
    if kind == "strip":
        if len(unit) < arg:
            raise ChainSpecError(f"strip:{arg} on a {len(unit)}-byte unit")
        return unit[:-arg]
    return bytes(b ^ arg for b in unit)   # xor


@dataclass(frozen=True)
class ComponentSpec:
    """One network function in the chain.

    ``capacity_units_per_s`` is what a single replica can drain — the
    embedding engine scales replicas out until the component's ingress
    rate fits.  ``cpu_ms_per_unit`` and ``memory_bytes`` are the declared
    per-unit/resident demand the capacity ledger prices.  ``stateful``
    pins the component to exactly one replica (its state cannot be
    sharded by the embedder; only the migrate plane may move it).
    """

    name: str
    cpu_ms_per_unit: float = 1.0
    memory_bytes: int = 2 * MB
    capacity_units_per_s: float = 8.0
    stateful: bool = False
    max_replicas: int = 4
    transform: str = "relay"

    def __post_init__(self) -> None:
        _require(bool(self.name) and self.name.isidentifier(),
                 f"component name must be a non-empty identifier, "
                 f"got {self.name!r}")
        _require(self.cpu_ms_per_unit >= 0.0, "cpu_ms_per_unit must be >= 0")
        _require(self.memory_bytes >= 1, "memory_bytes must be >= 1")
        _require(self.capacity_units_per_s > 0.0,
                 "capacity_units_per_s must be > 0")
        _require(self.max_replicas >= 1, "max_replicas must be >= 1")
        if self.stateful:
            _require(self.max_replicas == 1,
                     "a stateful component is pinned to max_replicas=1")
        _parse_transform(self.transform)


@dataclass(frozen=True)
class ArcSpec:
    """One directed edge: traffic from ``src`` to ``dst``.

    ``rate_units_per_s`` is the offered rate the embedding sizes against
    (zero-rate arcs are rejected — an arc carrying nothing is a template
    bug, not a degenerate case).  ``bidirectional`` declares a reverse
    flow (acks, responses) riding the same edge; the embedder counts it
    against both endpoints' network budgets.
    """

    src: str
    dst: str
    rate_units_per_s: float
    unit_bytes: int = 4096
    bidirectional: bool = False
    mode: str = "split"

    def __post_init__(self) -> None:
        _require(bool(self.src) and bool(self.dst),
                 "arc endpoints must be non-empty")
        _require(self.src != self.dst,
                 f"arc {self.src}->{self.dst} is a self-loop")
        _require(self.rate_units_per_s > 0.0,
                 f"arc {self.src}->{self.dst} has zero rate "
                 f"(zero-rate arcs are rejected)")
        _require(self.unit_bytes >= 1, "unit_bytes must be >= 1")
        _require(self.mode in ARC_MODES,
                 f"arc mode must be one of {ARC_MODES}, got {self.mode!r}")

    @property
    def key(self) -> str:
        """The arc's stable label (metrics, routing tables)."""
        return f"{self.src}->{self.dst}"


@dataclass(frozen=True)
class ChainSpec:
    """A complete service-graph template."""

    name: str
    components: tuple[ComponentSpec, ...]
    arcs: tuple[ArcSpec, ...]
    sources: tuple[str, ...] = ()
    sinks: tuple[str, ...] = ()
    allow_cycles: bool = False

    def __post_init__(self) -> None:
        _require(bool(self.name), "chain name must be non-empty")
        for attr in ("components", "arcs", "sources", "sinks"):
            value = getattr(self, attr)
            if not isinstance(value, tuple):
                object.__setattr__(self, attr, tuple(value))
        _require(len(self.components) >= 1,
                 "chain needs at least one component")
        names = [c.name for c in self.components]
        _require(len(set(names)) == len(names),
                 f"component names must be unique, got {names}")
        known = set(names)
        seen_edges = set()
        for arc in self.arcs:
            _require(arc.src in known,
                     f"arc {arc.key} dangles: unknown component {arc.src!r}")
            _require(arc.dst in known,
                     f"arc {arc.key} dangles: unknown component {arc.dst!r}")
            _require((arc.src, arc.dst) not in seen_edges,
                     f"duplicate arc {arc.key}")
            seen_edges.add((arc.src, arc.dst))
        # Default sources/sinks to the graph's own degree structure.
        has_in = {a.dst for a in self.arcs}
        has_out = {a.src for a in self.arcs}
        if not self.sources:
            object.__setattr__(self, "sources",
                               tuple(n for n in names if n not in has_in))
        if not self.sinks:
            object.__setattr__(self, "sinks",
                               tuple(n for n in names if n not in has_out))
        _require(len(self.sources) >= 1, "chain needs at least one source")
        _require(len(self.sinks) >= 1, "chain needs at least one sink")
        for src in self.sources:
            _require(src in known, f"unknown source {src!r}")
            _require(src not in has_in,
                     f"source {src!r} has incoming arcs")
        for sink in self.sinks:
            _require(sink in known, f"unknown sink {sink!r}")
            _require(sink not in has_out,
                     f"sink {sink!r} has outgoing arcs")
        _require(not set(self.sources) & set(self.sinks)
                 or len(self.components) == 1,
                 "sources and sinks must be disjoint")
        order = self._topo_order()
        if not self.allow_cycles:
            _require(order is not None, "chain graph has a cycle "
                     "(set allow_cycles=True to permit it)")
        # Every component must lie on some source→sink path's closure:
        # unreachable components would deploy replicas no traffic visits.
        reachable = self._reachable_from(set(self.sources))
        dangling = sorted(set(names) - reachable)
        _require(not dangling,
                 f"components unreachable from any source: {dangling}")

    # -- graph views -------------------------------------------------------

    def component(self, name: str) -> ComponentSpec:
        for comp in self.components:
            if comp.name == name:
                return comp
        raise ChainSpecError(f"no component named {name!r}")

    def arcs_in(self, name: str) -> list[ArcSpec]:
        return [a for a in self.arcs if a.dst == name]

    def arcs_out(self, name: str) -> list[ArcSpec]:
        return [a for a in self.arcs if a.src == name]

    def ingress_units_per_s(self, name: str) -> float:
        """The rate a component must drain: its incoming arc rates (or,
        for a source, the rates it is declared to emit downstream)."""
        incoming = self.arcs_in(name)
        if incoming:
            return sum(a.rate_units_per_s for a in incoming)
        return sum(a.rate_units_per_s for a in self.arcs_out(name))

    def _reachable_from(self, seeds: set) -> set:
        out: dict[str, list[str]] = {}
        for arc in self.arcs:
            out.setdefault(arc.src, []).append(arc.dst)
        reached = set(seeds)
        frontier = list(seeds)
        while frontier:
            node = frontier.pop()
            for nxt in out.get(node, ()):
                if nxt not in reached:
                    reached.add(nxt)
                    frontier.append(nxt)
        return reached

    def _topo_order(self) -> list[str] | None:
        """Kahn's algorithm; None when the graph has a cycle."""
        indeg = {c.name: 0 for c in self.components}
        for arc in self.arcs:
            indeg[arc.dst] += 1
        ready = sorted(n for n, d in indeg.items() if d == 0)
        order: list[str] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for arc in self.arcs_out(node):
                indeg[arc.dst] -= 1
                if indeg[arc.dst] == 0:
                    # Insertion keeps `ready` sorted: deterministic order.
                    ready.append(arc.dst)
                    ready.sort()
        return order if len(order) == len(indeg) else None

    def embed_order(self) -> list[str]:
        """Components in deterministic processing order.

        Topological for DAGs; for ``allow_cycles`` graphs, BFS layers
        from the sources with back-arcs ignored (ties alphabetical), so
        the embedder still visits every component exactly once.
        """
        order = self._topo_order()
        if order is not None:
            return order
        seen: list[str] = []
        frontier = sorted(self.sources)
        while frontier:
            node = frontier.pop(0)
            if node in seen:
                continue
            seen.append(node)
            nxt = sorted(a.dst for a in self.arcs_out(node)
                         if a.dst not in seen)
            frontier.extend(n for n in nxt if n not in frontier)
        for comp in self.components:     # cycle-only stragglers
            if comp.name not in seen:
                seen.append(comp.name)
        return seen

    def path_transforms(self, sink: str) -> list[str]:
        """The transform pipeline along the (unique) path to ``sink``.

        Only defined for chains where each component has at most one
        incoming arc (true of every stock template); raises otherwise.
        """
        path = [sink]
        node = sink
        while True:
            incoming = self.arcs_in(node)
            if not incoming:
                break
            _require(len(incoming) == 1,
                     f"path to {sink!r} is not unique (fan-in at {node!r})")
            node = incoming[0].src
            path.append(node)
        return [self.component(n).transform for n in reversed(path)]

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        out = asdict(self)
        out["components"] = [asdict(c) for c in self.components]
        out["arcs"] = [asdict(a) for a in self.arcs]
        out["sources"] = list(self.sources)
        out["sinks"] = list(self.sinks)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChainSpec":
        _require(isinstance(data, Mapping),
                 f"chain: expected a mapping, got {type(data).__name__}")
        data = dict(data)
        unknown = sorted(set(data) - {f.name for f in fields(cls)})
        _require(not unknown, f"chain: unknown keys {unknown}")
        components = data.pop("components", None)
        _require(isinstance(components, (list, tuple)) and components,
                 "chain needs a non-empty 'components' list")
        arcs = data.pop("arcs", ())
        _require(isinstance(arcs, (list, tuple)), "'arcs' must be a list")
        kwargs = dict(data)
        kwargs["components"] = tuple(
            _from_mapping(ComponentSpec, c, "component") for c in components)
        kwargs["arcs"] = tuple(
            _from_mapping(ArcSpec, a, "arc") for a in arcs)
        for key in ("sources", "sinks"):
            if key in kwargs:
                _require(isinstance(kwargs[key], (list, tuple)),
                         f"'{key}' must be a list")
                kwargs[key] = tuple(kwargs[key])
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise ChainSpecError(f"chain: {exc}") from exc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ChainSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ChainSpecError(f"chain is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path: str) -> "ChainSpec":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def digest(self) -> str:
        """SHA-256 over the canonical encoding: the template's identity."""
        return hashlib.sha256(canonical_encode(self.to_dict())).hexdigest()


# -- stock templates -------------------------------------------------------

def pipeline_chain(name: str = "cover-browser-store",
                   rate_units_per_s: float = 4.0,
                   unit_bytes: int = 4096,
                   pad_bytes: int = 256,
                   capacity_units_per_s: float = 2.0,
                   max_replicas: int = 4) -> ChainSpec:
    """The paper's composite scenario as a linear chain.

    ``cover`` pads every unit to a fixed-looking size (Cover's
    traffic-shaping role), ``defense`` strips the padding back off and
    normalizes the stream (the Browser defense), and a stateful ``store``
    keeps the result (the Dropbox role — pinned, so only the migrate
    plane may move it).
    """
    return ChainSpec(
        name=name,
        components=(
            ComponentSpec(name="cover", transform=f"pad:{pad_bytes}",
                          capacity_units_per_s=capacity_units_per_s,
                          max_replicas=max_replicas),
            ComponentSpec(name="defense", transform=f"strip:{pad_bytes}",
                          cpu_ms_per_unit=2.0,
                          capacity_units_per_s=capacity_units_per_s,
                          max_replicas=max_replicas),
            ComponentSpec(name="store", transform="relay", stateful=True,
                          capacity_units_per_s=4 * capacity_units_per_s,
                          max_replicas=1),
        ),
        arcs=(
            ArcSpec(src="cover", dst="defense",
                    rate_units_per_s=rate_units_per_s,
                    unit_bytes=unit_bytes + pad_bytes),
            ArcSpec(src="defense", dst="store",
                    rate_units_per_s=rate_units_per_s,
                    unit_bytes=unit_bytes, bidirectional=True),
        ),
        sources=("cover",),
        sinks=("store",),
    )


def fanout_chain(name: str = "lb-dropboxes",
                 n_dropboxes: int = 3,
                 rate_units_per_s: float = 6.0,
                 unit_bytes: int = 4096) -> ChainSpec:
    """A LoadBalancer fanning out to sharded Dropboxes (copy wiring)."""
    components = [ComponentSpec(name="balancer", transform="relay",
                                capacity_units_per_s=2 * rate_units_per_s,
                                max_replicas=2)]
    arcs = []
    sinks = []
    for i in range(n_dropboxes):
        box = f"dropbox{i}"
        components.append(ComponentSpec(
            name=box, transform=f"xor:{(i % 255) + 1}", stateful=True,
            capacity_units_per_s=rate_units_per_s, max_replicas=1))
        # Copy wiring: every unit rides every arc, so each arc carries
        # the balancer's full emission rate on the wire.
        arcs.append(ArcSpec(src="balancer", dst=box,
                            rate_units_per_s=rate_units_per_s,
                            unit_bytes=unit_bytes, mode="copy"))
        sinks.append(box)
    return ChainSpec(name=name, components=tuple(components),
                     arcs=tuple(arcs), sources=("balancer",),
                     sinks=tuple(sinks))
