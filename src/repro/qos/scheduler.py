"""Rate limiting and weighted-fair scheduling primitives.

Both primitives are pure accounting over simulated time: callers pass the
current sim clock in and get a *pacing delay* back, and the caller (the
API gate, never the per-byte transfer path) decides where to sleep.  That
keeps the scheduler deterministic, testable without a simulator, and off
the data-plane hot path.

:class:`TokenBucket` is the per-client rate limiter; :class:`FairQueue`
is a virtual-time weighted-fair queue (WFQ) that apportions one resource
(cpu milliseconds, network bytes) across active flows in proportion to
their priority-class weights.
"""

from __future__ import annotations

from typing import Optional


class TokenBucket:
    """A classic token bucket: ``rate`` units/s, up to ``burst`` banked.

    :meth:`reserve` always accepts the charge (work already happened; the
    scheduler only paces, it never drops) and returns how long the caller
    must sleep to pay the debt off.  The bucket may therefore go negative
    — that is the debt being amortized.
    """

    __slots__ = ("rate", "burst", "_tokens", "_updated")

    def __init__(self, rate: float, burst: Optional[float] = None) -> None:
        if rate <= 0:
            raise ValueError("token bucket rate must be positive")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else self.rate
        self._tokens = self.burst
        self._updated = 0.0

    def _refill(self, now: float) -> None:
        if now > self._updated:
            self._tokens = min(self.burst,
                               self._tokens + (now - self._updated) * self.rate)
            self._updated = now

    def reserve(self, cost: float, now: float) -> float:
        """Charge ``cost`` units; return the pacing delay (0.0 = no wait)."""
        if cost <= 0:
            return 0.0
        self._refill(now)
        self._tokens -= cost
        if self._tokens >= 0:
            return 0.0
        return -self._tokens / self.rate

    def available(self, now: float) -> float:
        """Tokens currently banked (may be negative while in debt)."""
        self._refill(now)
        return self._tokens


class _Flow:
    __slots__ = ("weight", "finish", "active")

    def __init__(self, weight: float) -> None:
        self.weight = weight
        self.finish = 0.0       # virtual finish tag of the last charge
        self.active = True


class FairQueue:
    """Virtual-time weighted-fair queuing over one shared resource.

    The shared resource drains at ``rate`` units per simulated second.
    Virtual time V advances at ``rate / sum(active weights)``, so a flow
    with weight w is entitled to the fraction ``w / W`` of the resource.
    Each charge pushes the flow's finish tag ``F = max(F, V) + cost / w``;
    the pacing delay is how long real time must pass for V to catch up to
    F (minus a small per-flow burst allowance so isolated flows never
    stall).  Interactive flows carry a larger weight than bulk flows and
    therefore see proportionally smaller delays under contention.
    """

    def __init__(self, rate: float, burst: float = 0.0) -> None:
        if rate <= 0:
            raise ValueError("fair queue rate must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._flows: dict[object, _Flow] = {}
        self._vtime = 0.0
        self._updated = 0.0
        self._active_weight = 0.0

    # -- flow lifecycle -----------------------------------------------------

    def register(self, key: object, weight: float, now: float) -> None:
        """Add a flow; a re-register just updates its weight."""
        if weight <= 0:
            raise ValueError("flow weight must be positive")
        self._advance(now)
        flow = self._flows.get(key)
        if flow is not None:
            self._active_weight += weight - flow.weight
            flow.weight = weight
            return
        flow = _Flow(weight)
        flow.finish = self._vtime
        self._flows[key] = flow
        self._active_weight += weight

    def unregister(self, key: object, now: float) -> None:
        """Remove a flow (instance finished or was killed/shed)."""
        flow = self._flows.pop(key, None)
        if flow is not None:
            self._advance(now)
            self._active_weight -= flow.weight
            if not self._flows:
                self._active_weight = 0.0   # clamp float drift at idle

    # -- accounting ---------------------------------------------------------

    def _advance(self, now: float) -> None:
        if now > self._updated:
            if self._active_weight > 0:
                self._vtime += (now - self._updated) * (
                    self.rate / self._active_weight)
            self._updated = now

    def charge(self, key: object, cost: float, now: float) -> float:
        """Charge ``cost`` units to a flow; return its pacing delay.

        Unknown flows are unpaced (delay 0.0): flows are registered at
        admission, so an unknown key means the plane chose not to manage
        this traffic and the charge is a no-op.
        """
        flow = self._flows.get(key)
        if flow is None or cost <= 0:
            return 0.0
        self._advance(now)
        vtime = self._vtime
        flow.finish = max(flow.finish, vtime) + cost / flow.weight
        lag = flow.finish - vtime - self.burst / flow.weight
        if lag <= 0 or self._active_weight <= 0:
            return 0.0
        return lag * self._active_weight / self.rate

    def backlog(self, key: object, now: float) -> float:
        """A flow's virtual lag (0.0 when it may send immediately)."""
        flow = self._flows.get(key)
        if flow is None:
            return 0.0
        self._advance(now)
        return max(0.0, flow.finish - self._vtime)

    @property
    def active_flows(self) -> int:
        """How many flows are currently registered."""
        return len(self._flows)
