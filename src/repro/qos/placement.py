"""Slack-aware placement: pick the box with the most advertised room.

Boxes running the serving plane advertise load reports through the
directory (a side-table, not the signed consensus).  Clients rank
candidate boxes greedily by advertised slack — shedding boxes last, then
most free slots, then shortest queue — in the spirit of B-JointSP's
greedy joint placement: cheap, local, and good enough to steer load away
from saturated boxes without any coordination.

A box with *no* report is ranked ahead of every reporting box: it is
either not running the plane (admits everything) or has never been busy
enough to matter, and optimistically probing it is how its first report
gets generated.  Ties break on fingerprint so placement is deterministic
for a fixed network.
"""

from __future__ import annotations

from typing import Optional, Sequence

_UNKNOWN_SLOTS = float("inf")


def slack_key(descriptor, report: Optional[dict]) -> tuple:
    """Sort key for one candidate box (ascending = more attractive)."""
    if report is None:
        return (0, -_UNKNOWN_SLOTS, 0, descriptor.identity_fp)
    return (1 if report.get("shedding") else 0,
            -float(report.get("slots_free", 0)),
            int(report.get("queue_len", 0)),
            descriptor.identity_fp)


def rank_boxes(boxes: Sequence, load_table: dict) -> list:
    """Candidate boxes ordered most-attractive first."""
    return sorted(boxes,
                  key=lambda box: slack_key(box,
                                            load_table.get(box.identity_fp)))


def pick_box_by_slack(boxes: Sequence, load_table: dict):
    """The single most attractive box (raises on an empty candidate set)."""
    if not boxes:
        raise ValueError("no candidate boxes to place on")
    return rank_boxes(boxes, load_table)[0]
