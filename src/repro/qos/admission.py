"""Admission control: price work before it touches a container.

Two gates, matching the two points where a Bento request commits server
resources:

* **Slot admission** (at ``request_image``): caps how many containers run
  concurrently.  When all slots are busy the request parks in a bounded,
  priority-ordered queue; when the queue is full the request is refused
  with a structured ``retry_after`` the client's retry loop honors.  An
  interactive arrival finding the queue full may evict the youngest
  queued bulk entry instead of being turned away.

* **Manifest pricing** (at ``load_function``): charges the manifest's
  declared memory/disk ask against a ledger cgroup sized to the box's
  capacity, atomically via :meth:`~repro.sandbox.cgroups.CGroup.charge_many`
  — either the whole ask is reserved or none of it is.

The ledger is a *standalone* cgroup, deliberately not parented under the
server's root group: the real per-container charges still land on the
real hierarchy downstream, and parenting the ledger there would count
every byte twice.  The ledger is the promise; the container cgroup is
the fulfilment.
"""

from __future__ import annotations

from typing import Optional

from repro.core.errors import ServerBusy
from repro.core.manifest import FunctionManifest
from repro.netsim.simulator import (Actor, Future, SimTimeoutError, Wait,
                                    blocking)
from repro.sandbox.cgroups import CGroup, ResourceExceeded


class _Waiter:
    """One parked slot request."""

    __slots__ = ("key", "priority", "seq", "future", "enqueued_at")

    def __init__(self, key: object, priority: str, seq: int,
                 future: Future, enqueued_at: float) -> None:
        self.key = key
        self.priority = priority
        self.seq = seq
        self.future = future
        self.enqueued_at = enqueued_at


class AdmissionController:
    """Slots, a bounded priority queue, and the resource ledger."""

    def __init__(self, sim, slots: int, queue_depth: int,
                 queue_timeout_s: float, base_retry_after_s: float,
                 capacity_memory: int, capacity_disk: int,
                 on_evict=None) -> None:
        if slots <= 0:
            raise ValueError("admission needs at least one slot")
        self._sim = sim
        self._on_evict = on_evict
        self.slots = slots
        self.queue_depth = queue_depth
        self.queue_timeout_s = queue_timeout_s
        self.base_retry_after_s = base_retry_after_s
        self.ledger = CGroup("qos-ledger", memory=capacity_memory,
                             disk=capacity_disk)
        self._held: set = set()              # keys holding a slot
        self._priced: dict = {}              # key -> charges dict on ledger
        self._queue: list[_Waiter] = []      # kept in wake order
        self._seq = 0

    # -- introspection ------------------------------------------------------

    @property
    def slots_free(self) -> int:
        """Slots not currently held by an admitted request."""
        return max(0, self.slots - len(self._held))

    @property
    def queue_len(self) -> int:
        """How many requests are parked waiting for a slot."""
        return len(self._queue)

    def retry_after(self) -> float:
        """The backoff hint for a refused request.

        Scales with how oversubscribed the box is: an empty queue quotes
        the base interval, a deep queue quotes proportionally more, so
        rejected clients spread their retries instead of stampeding.
        """
        return self.base_retry_after_s * (
            1.0 + len(self._queue) / max(1, self.slots))

    # -- slot admission -----------------------------------------------------

    def _wake_rank(self, waiter: _Waiter) -> tuple:
        # Interactive wakes before bulk; FIFO within a class.
        return (0 if waiter.priority == "interactive" else 1, waiter.seq)

    def try_admit(self, key: object) -> bool:
        """Take a slot if one is free right now (no queueing)."""
        if len(self._held) >= self.slots:
            return False
        self._held.add(key)
        return True

    @blocking
    def admit(self, thread: Actor, key: object,
              priority: str = "bulk") -> float:
        """Block until ``key`` holds a slot; returns the queued duration.

        Raises :class:`ServerBusy` (with ``retry_after``) when the queue
        is full or the wait times out.  The caller owns the slot until it
        calls :meth:`release`.
        """
        if self.try_admit(key):
            return 0.0
        if len(self._queue) >= self.queue_depth:
            evicted = self._evict_for(priority)
            if evicted is None:
                raise ServerBusy("admission queue full",
                                 retry_after=self.retry_after())
        waiter = _Waiter(key, priority, self._seq, Future(self._sim),
                         self._sim.now)
        self._seq += 1
        self._queue.append(waiter)
        self._queue.sort(key=self._wake_rank)
        try:
            yield Wait(waiter.future, self.queue_timeout_s)
        except SimTimeoutError:
            if waiter in self._queue:
                self._queue.remove(waiter)
            raise ServerBusy("timed out waiting for an admission slot",
                             retry_after=self.retry_after()) from None
        return self._sim.now - waiter.enqueued_at

    def _evict_for(self, priority: str) -> Optional[_Waiter]:
        """Make room for an interactive arrival by shedding queued bulk.

        Returns the evicted waiter (its future is rejected with a
        ``retry_after``), or None when nothing may be evicted — the queue
        is all-interactive, or the arrival is itself bulk.
        """
        if priority != "interactive":
            return None
        bulk = [w for w in self._queue if w.priority != "interactive"]
        if not bulk:
            return None
        victim = max(bulk, key=lambda w: w.seq)   # youngest bulk entry
        self._queue.remove(victim)
        victim.future.reject(ServerBusy(
            "displaced from admission queue by interactive work",
            retry_after=self.retry_after()))
        if self._on_evict is not None:
            self._on_evict(victim)
        return victim

    def release(self, key: object) -> Optional[_Waiter]:
        """Free ``key``'s slot and hand it to the best queued waiter.

        The slot transfers directly to the woken waiter (it is marked
        held *before* the future resolves), so a burst of simultaneous
        releases can never over-admit.  Returns the woken waiter, if any.
        """
        self._held.discard(key)
        self.unprice(key)
        while self._queue and len(self._held) < self.slots:
            waiter = self._queue.pop(0)
            if waiter.future.done:
                continue        # timed out or evicted in the same instant
            self._held.add(waiter.key)
            waiter.future.resolve(None)
            return waiter
        return None

    def holds_slot(self, key: object) -> bool:
        """Whether ``key`` currently holds an admission slot."""
        return key in self._held

    # -- manifest pricing ---------------------------------------------------

    def price(self, key: object, manifest: FunctionManifest) -> None:
        """Reserve the manifest's declared ask on the ledger, atomically.

        Raises :class:`ServerBusy` when the box cannot honor the ask
        right now (the reservation would overcommit capacity).  Repricing
        the same key (function reload on one instance) releases the old
        reservation first.
        """
        self.unprice(key)
        charges = {"memory": manifest.memory_bytes,
                   "disk": manifest.disk_bytes}
        try:
            self.ledger.charge_many(charges)
        except ResourceExceeded as exc:
            raise ServerBusy(
                f"capacity exhausted: {exc.resource} ask of {exc.requested} "
                f"exceeds remaining headroom",
                retry_after=self.retry_after()) from exc
        self._priced[key] = charges

    def unprice(self, key: object) -> None:
        """Return a key's priced reservation to the ledger, if any."""
        charges = self._priced.pop(key, None)
        if charges:
            for resource, amount in charges.items():
                if amount:
                    self.ledger.charge(resource, -amount)
