"""Load shedding with watermark hysteresis.

The shedder watches admission-queue depth and flips into *shedding* mode
once the queue crosses a high watermark, staying there until it drains
below a low watermark (hysteresis keeps it from flapping at the
boundary).  While shedding:

* new **bulk** work is refused outright instead of queued — the queue's
  remaining capacity is kept for interactive work;
* the box may demand a hashcash client puzzle before admitting anything,
  making a flood pay CPU for every admission attempt (the same
  proof-of-work scheme :mod:`repro.functions.ddos_defense` applies to
  hidden-service introductions, moved to the box's front door);
* the state is advertised through the directory so slack-aware clients
  place new work elsewhere.
"""

from __future__ import annotations


class LoadShedder:
    """Hysteresis thermostat over admission-queue occupancy."""

    def __init__(self, high_watermark: float = 0.75,
                 low_watermark: float = 0.25,
                 puzzle_difficulty: int = 8) -> None:
        if not 0.0 <= low_watermark <= high_watermark <= 1.0:
            raise ValueError("watermarks must satisfy 0 <= low <= high <= 1")
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.puzzle_difficulty = int(puzzle_difficulty)
        self.shedding = False
        self.transitions = 0        # how many times shedding toggled on

    def update(self, queue_len: int, queue_depth: int) -> bool:
        """Re-evaluate against current queue occupancy; returns the state."""
        if queue_depth <= 0:
            occupancy = 1.0 if queue_len > 0 else 0.0
        else:
            occupancy = queue_len / queue_depth
        if not self.shedding and occupancy >= self.high_watermark:
            self.shedding = True
            self.transitions += 1
        elif self.shedding and occupancy <= self.low_watermark:
            self.shedding = False
        return self.shedding

    def refuses(self, priority: str) -> bool:
        """Should this arrival be refused without queueing?"""
        return self.shedding and priority != "interactive"

    def demands_puzzle(self) -> bool:
        """Should admission require a proof of work right now?"""
        return self.shedding and self.puzzle_difficulty > 0
