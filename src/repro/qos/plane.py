"""The serving plane: admission → schedule → shed → place.

:class:`ServingPlane` sits between :class:`~repro.core.server.BentoServer`
and the sandbox/netsim layers and owns every quality-of-service decision
the box makes:

* ``REQUEST_IMAGE`` passes through **slot admission** (bounded queue,
  priority wake order, structured ``retry_after`` refusals) and — under
  shed pressure — a hashcash **client puzzle**;
* ``LOAD_FUNCTION`` **prices** the manifest's declared ask against a
  capacity ledger, atomically;
* running instances are **scheduled**: cpu milliseconds and network bytes
  drain through weighted-fair queues (interactive outweighs bulk) plus a
  per-flow token bucket, with pacing applied at the API gate — never on
  the per-byte transfer path;
* load is **advertised** through the directory after every admission
  change so slack-aware clients place new work on the emptiest box.

Everything is driven by simulated time and the server's forked RNG, so a
fixed seed replays bit-identically; with the plane absent (the default)
no code path below ever runs and behavior is byte-for-byte the same as
before this module existed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.errors import PuzzleRequired, ServerBusy
from repro.core.manifest import PRIORITY_CLASSES
from repro.functions.ddos_defense import AdmissionPuzzle
from repro.netsim.simulator import Actor, Sleep, blocking
from repro.obs.metrics import REGISTRY as _metrics
from repro.perf.counters import counters as _perf
from repro.qos.admission import AdmissionController
from repro.qos.scheduler import FairQueue, TokenBucket
from repro.qos.shedding import LoadShedder

#: Fair-share weights per priority class (interactive : bulk = 4 : 1).
CLASS_WEIGHTS = {"interactive": 4.0, "bulk": 1.0}


@dataclass(frozen=True)
class QosConfig:
    """Knobs for one box's serving plane.

    ``slots`` defaults to the node policy's ``max_containers``;
    memory/disk capacity default to the policy totals.  Rates are per
    simulated second.
    """

    slots: Optional[int] = None
    queue_depth: int = 8
    queue_timeout_s: float = 60.0
    base_retry_after_s: float = 2.0
    cpu_rate_ms: float = 4000.0          # shared cpu-ms drained per second
    cpu_burst_ms: float = 50.0           # per-flow call budget before pacing
    net_rate_bytes: float = 4 * 1024 * 1024  # shared egress bytes per second
    net_burst_bytes: float = 256 * 1024  # per-charge allowance before pacing
    client_net_rate: Optional[float] = None  # per-flow token-bucket cap
    shed_high_watermark: float = 0.75
    shed_low_watermark: float = 0.25
    puzzle_difficulty: int = 8           # 0 disables admission puzzles
    advertise: bool = True               # publish load via the directory


class ServingPlane:
    """One box's admission controller, fair scheduler, and load shedder."""

    def __init__(self, server, config: Optional[QosConfig] = None) -> None:
        self.server = server
        self.config = config or QosConfig()
        policy = server.policy
        slots = self.config.slots or policy.max_containers
        self.admission = AdmissionController(
            server.sim, slots=slots,
            queue_depth=self.config.queue_depth,
            queue_timeout_s=self.config.queue_timeout_s,
            base_retry_after_s=self.config.base_retry_after_s,
            capacity_memory=policy.max_total_memory,
            capacity_disk=policy.max_total_disk,
            on_evict=self._count_shed)
        self.shedder = LoadShedder(
            high_watermark=self.config.shed_high_watermark,
            low_watermark=self.config.shed_low_watermark,
            puzzle_difficulty=self.config.puzzle_difficulty)
        self.cpu_queue = FairQueue(rate=self.config.cpu_rate_ms,
                                   burst=self.config.cpu_burst_ms)
        self.net_queue = FairQueue(rate=self.config.net_rate_bytes,
                                   burst=self.config.net_burst_bytes)
        # The plane's own RNG fork: puzzle challenges draw from here, so
        # enabling the plane never perturbs the server's other streams.
        self.rng = server.rng.fork("qos")
        self._puzzles: dict = {}         # connection -> outstanding puzzle
        self._buckets: dict = {}         # flow key -> per-client TokenBucket
        self._key_seq = 0                # admission keys, unique per plane
        nick = server.relay.nickname
        self._m_admitted = _metrics.counter("qos_admitted", {"box": nick})
        self._m_rejected = _metrics.counter("qos_rejected", {"box": nick})
        self._m_shed = _metrics.counter("qos_shed", {"box": nick})
        self._m_queue_depth = _metrics.gauge("qos_queue_depth", {"box": nick})
        self._m_slots_free = _metrics.gauge("qos_slots_free", {"box": nick})
        self._h_wait = {
            cls: _metrics.histogram("qos_queue_wait_s", {"class": cls})
            for cls in PRIORITY_CLASSES}
        self._advertise()   # make the box discoverable as idle from birth

    # -- admission ---------------------------------------------------------

    @blocking
    def admit_request(self, thread: Actor, conn, message: dict) -> object:
        """Gate one ``request_image``; returns the admission key.

        The caller must hand the key to :meth:`attach_instance` once the
        container exists, or :meth:`release` it if setup fails.  Raises
        :class:`ServerBusy` or :class:`PuzzleRequired`.
        """
        priority = message.get("priority", "bulk")
        if priority not in PRIORITY_CLASSES:
            priority = "bulk"
        self._require_puzzle(conn, message)
        if self.shedder.refuses(priority):
            self._count_shed()
            self._m_rejected.value += 1
            _perf.qos_rejected += 1
            self._advertise()
            raise ServerBusy("shedding load: bulk admissions suspended",
                             retry_after=self.admission.retry_after())
        self._key_seq += 1
        key = ("adm", self._key_seq)
        try:
            waited = yield from self.admission.admit(thread, key, priority)
        except ServerBusy:
            self._m_rejected.value += 1
            _perf.qos_rejected += 1
            self._after_queue_change()
            raise
        self._h_wait[priority].observe(waited)
        self._m_admitted.value += 1
        _perf.qos_admitted += 1
        self._after_queue_change()
        return key

    def attach_instance(self, key: object, instance) -> None:
        """Bind an admission slot to the instance it produced."""
        instance.qos_key = key

    def release(self, key: object) -> None:
        """Free a slot (instance died, or setup failed before one existed).

        Any waiter the freed slot wakes resumes inside its own
        :meth:`admit_request` call, which does that request's accounting
        — nothing to count here beyond the queue-state refresh.
        """
        self.admission.release(key)
        self.admission.unprice(key)
        self.cpu_queue.unregister(key, self.server.sim.now)
        self.net_queue.unregister(key, self.server.sim.now)
        self._buckets.pop(key, None)
        self._after_queue_change()

    def price_manifest(self, instance, manifest) -> None:
        """Reserve the manifest's declared ask; register its flows."""
        key = getattr(instance, "qos_key", None)
        if key is None:
            return
        try:
            self.admission.price(key, manifest)
        except ServerBusy:
            self._m_rejected.value += 1
            _perf.qos_rejected += 1
            raise
        now = self.server.sim.now
        weight = CLASS_WEIGHTS.get(manifest.priority, 1.0)
        self.cpu_queue.register(key, weight, now)
        self.net_queue.register(key, weight, now)
        if self.config.client_net_rate:
            self._buckets[key] = TokenBucket(self.config.client_net_rate)
        self._advertise()

    # -- puzzles -----------------------------------------------------------

    def _require_puzzle(self, conn, message: dict) -> None:
        """Demand (and verify) a proof of work while shedding."""
        if not self.shedder.demands_puzzle():
            return
        outstanding = self._puzzles.get(conn)
        if outstanding is not None:
            challenge = bytes.fromhex(str(message.get("pow_challenge", "")))
            nonce = message.get("pow_nonce")
            if isinstance(nonce, int) and outstanding.check(challenge, nonce):
                del self._puzzles[conn]
                return
        puzzle = AdmissionPuzzle.issue(self.rng,
                                       self.shedder.puzzle_difficulty)
        self._puzzles[conn] = puzzle
        self._m_rejected.value += 1
        _perf.qos_rejected += 1
        raise PuzzleRequired("admission requires proof of work",
                             challenge=puzzle.challenge,
                             difficulty=puzzle.difficulty_bits)

    # -- scheduling --------------------------------------------------------

    @blocking
    def charge_cpu(self, thread: Optional[Actor], instance,
                   cost_ms: float) -> None:
        """Meter cpu milliseconds; sleep out any fair-share pacing delay."""
        key = getattr(instance, "qos_key", None)
        if key is None or cost_ms <= 0:
            return
        delay = self.cpu_queue.charge(key, cost_ms, self.server.sim.now)
        yield from self._pace(thread, delay)

    @blocking
    def charge_net(self, thread: Optional[Actor], instance,
                   nbytes: int) -> None:
        """Meter egress/ingress bytes through the fair queue + bucket."""
        key = getattr(instance, "qos_key", None)
        if key is None or nbytes <= 0:
            return
        now = self.server.sim.now
        delay = self.net_queue.charge(key, float(nbytes), now)
        bucket = self._buckets.get(key)
        if bucket is not None:
            delay = max(delay, bucket.reserve(float(nbytes), now))
        yield from self._pace(thread, delay)

    def _pace(self, thread: Optional[Actor], delay: float):
        if delay > 0 and thread is not None:
            _perf.qos_throttles += 1
            yield Sleep(delay)

    # -- shedding & advertisement ------------------------------------------

    def _count_shed(self, _waiter=None) -> None:
        self._m_shed.value += 1
        _perf.qos_shed += 1

    def _after_queue_change(self) -> None:
        """Re-evaluate shed state and re-advertise after any transition."""
        was_shedding = self.shedder.shedding
        self.shedder.update(self.admission.queue_len,
                            self.admission.queue_depth)
        if (self.shedder.shedding and not was_shedding
                and getattr(self.server, "migrate", None) is not None):
            # Shedding just engaged: with the migration plane on, try to
            # *move* a bulk tenant to a slack-rich box instead of only
            # refusing new work here.
            self.server.migrate.maybe_shed()
        self._m_queue_depth.set(self.admission.queue_len)
        self._m_slots_free.set(self.admission.slots_free)
        self._advertise()

    def load_report(self) -> dict:
        """What this box tells the directory about itself."""
        return {
            "slots_free": self.admission.slots_free,
            "slots": self.admission.slots,
            "queue_len": self.admission.queue_len,
            "queue_depth": self.admission.queue_depth,
            "shedding": self.shedder.shedding,
            "mem_free": self.admission.ledger.headroom("memory"),
            "asof": self.server.sim.now,
        }

    def _advertise(self) -> None:
        if not self.config.advertise:
            return
        self.server.directory.advertise_load(
            self.server.relay.fingerprint, self.load_report())
