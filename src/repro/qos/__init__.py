"""The serving plane: admission control, fair scheduling, load shedding.

See :mod:`repro.qos.plane` for the orchestrator a
:class:`~repro.core.server.BentoServer` embeds, and DESIGN.md §10 for how
admission → schedule → shed → place fit together.
"""

from repro.qos.admission import AdmissionController
from repro.qos.placement import pick_box_by_slack, rank_boxes, slack_key
from repro.qos.plane import CLASS_WEIGHTS, QosConfig, ServingPlane
from repro.qos.scheduler import FairQueue, TokenBucket
from repro.qos.shedding import LoadShedder

__all__ = [
    "AdmissionController",
    "CLASS_WEIGHTS",
    "FairQueue",
    "LoadShedder",
    "QosConfig",
    "ServingPlane",
    "TokenBucket",
    "pick_box_by_slack",
    "rank_boxes",
    "slack_key",
]
