"""Labeled metrics: counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` keys every metric by ``(name, labels)`` —
``cells_crypted{direction=fwd}``, ``circuit_build_s`` — the way Prometheus
clients do, but deterministic and allocation-shy:

* label sets are **interned**: equal label dicts resolve to the *same*
  tuple object, so metric lookup is one dict probe and repeated lookups
  build no garbage;
* hot paths fetch their metric handle **once** (module or instance level)
  and then pay a plain attribute add per observation;
* :meth:`MetricsRegistry.reset` zeroes values **in place** instead of
  discarding the metric objects, so cached handles survive the per-test
  reset and cross-test bleed still dies.

The legacy :mod:`repro.perf.counters` fields stay the cheapest possible
instrumentation for the innermost loops; :func:`bridge_perf_counters`
projects their current values onto the registry (as ``perf_<field>``
counters) so one snapshot shows both worlds.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Mapping, Optional, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "REGISTRY", "bridge_perf_counters", "DEFAULT_BUCKETS"]

LabelsKey = tuple  # interned, sorted tuple of (key, value) pairs

#: Default histogram buckets: simulated-seconds latencies from 10 ms to
#: 10 min, roughly logarithmic (a final +inf bucket is implicit).
DEFAULT_BUCKETS = (0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
                   10.0, 30.0, 60.0, 120.0, 300.0, 600.0)


class Counter:
    """A monotonically increasing value.

    ``value`` is public: the hottest call sites may do ``c.value += n``
    directly instead of paying a method call.
    """

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelsKey) -> None:
        self.name = name
        self.labels = labels
        self.value: Union[int, float] = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def _reset(self) -> None:
        self.value = 0


class Gauge:
    """A value that can go up and down (queue depths, live instances)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelsKey) -> None:
        self.name = name
        self.labels = labels
        self.value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        """Pin the gauge to ``value``."""
        self.value = value

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Move the gauge up by ``amount``."""
        self.value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        """Move the gauge down by ``amount``."""
        self.value -= amount

    def _reset(self) -> None:
        self.value = 0


class Histogram:
    """Fixed-bucket histogram (cumulative-on-export, exact per-bucket here).

    ``bounds`` are upper bucket edges; an observation lands in the first
    bucket whose bound is >= the value, or the implicit +inf overflow
    bucket.  ``bucket_counts`` has ``len(bounds) + 1`` entries and their
    sum always equals ``count`` — the invariant the property tests pin.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count", "sum")

    def __init__(self, name: str, labels: LabelsKey,
                 bounds: Iterable[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in bounds))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError("histogram bounds must be distinct")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, +inf last."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self.bucket_counts[-1]))
        return out

    def _reset(self) -> None:
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0


class MetricsRegistry:
    """All metrics, keyed by ``(name, interned_labels)``.

    Asking twice for the same name/labels/kind returns the same object;
    asking with a different kind for an existing key is an error.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelsKey], object] = {}
        self._interned: dict[LabelsKey, LabelsKey] = {}

    # -- label interning ---------------------------------------------------

    def labels_key(self, labels: Optional[Mapping[str, str]]) -> LabelsKey:
        """The canonical key for a label mapping.

        Equal mappings (any insertion order) return the *identical* tuple
        object, so keys compare by identity fast-path and repeated metric
        lookups allocate nothing after the first.
        """
        if not labels:
            return ()
        key = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
        return self._interned.setdefault(key, key)

    # -- metric accessors --------------------------------------------------

    def counter(self, name: str,
                labels: Optional[Mapping[str, str]] = None) -> Counter:
        """Get-or-create the counter ``name{labels}``."""
        return self._get(name, labels, Counter)

    def gauge(self, name: str,
              labels: Optional[Mapping[str, str]] = None) -> Gauge:
        """Get-or-create the gauge ``name{labels}``."""
        return self._get(name, labels, Gauge)

    def histogram(self, name: str,
                  labels: Optional[Mapping[str, str]] = None,
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        """Get-or-create the histogram ``name{labels}``.

        ``buckets`` only applies on first creation; a later caller asking
        for different buckets on the same key gets the existing histogram.
        """
        key = (name, self.labels_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = Histogram(name, key[1], bounds=buckets)
            self._metrics[key] = metric
        elif not isinstance(metric, Histogram):
            raise TypeError(
                f"{name}{dict(key[1])} already registered as "
                f"{type(metric).__name__}")
        return metric

    def _get(self, name: str, labels: Optional[Mapping[str, str]],
             cls: type) -> object:
        key = (name, self.labels_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1])
            self._metrics[key] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"{name}{dict(key[1])} already registered as "
                f"{type(metric).__name__}")
        return metric

    # -- views -------------------------------------------------------------

    def collect(self) -> list[object]:
        """Every registered metric, sorted by ``(name, labels)``."""
        return [self._metrics[key] for key in sorted(self._metrics)]

    def snapshot(self) -> dict:
        """Plain-data view: ``{name{labels}: value-or-histogram-dict}``.

        Keys render labels Prometheus-style; ordering is sorted, so two
        identical registries snapshot identically.
        """
        out: dict = {}
        for metric in self.collect():
            rendered = _render_key(metric.name, metric.labels)
            if isinstance(metric, Histogram):
                out[rendered] = {
                    "count": metric.count,
                    "sum": metric.sum,
                    "buckets": [[bound, n] for bound, n
                                in zip(metric.bounds, metric.bucket_counts)]
                    + [["+inf", metric.bucket_counts[-1]]],
                }
            else:
                out[rendered] = metric.value
        return out

    def reset(self) -> None:
        """Zero every metric **in place** (cached handles stay valid)."""
        for metric in self._metrics.values():
            metric._reset()

    # -- snapshot / merge (sharded-kernel support) ------------------------

    def state(self) -> list[dict]:
        """Serializable full state: one plain dict per metric, sorted.

        Unlike :meth:`snapshot` (a rendered view), this round-trips: a
        worker process sends ``state()`` over a pipe and the parent feeds
        it to :meth:`merge_state`.  Everything inside is JSON/pickle-safe
        plain data.
        """
        out: list[dict] = []
        for key in sorted(self._metrics):
            metric = self._metrics[key]
            entry: dict = {"name": metric.name,
                           "labels": [list(pair) for pair in metric.labels]}
            if isinstance(metric, Histogram):
                entry["kind"] = "histogram"
                entry["bounds"] = list(metric.bounds)
                entry["bucket_counts"] = list(metric.bucket_counts)
                entry["count"] = metric.count
                entry["sum"] = metric.sum
            else:
                entry["kind"] = ("counter" if isinstance(metric, Counter)
                                 else "gauge")
                entry["value"] = metric.value
            out.append(entry)
        return out

    def merge_state(self, state: list[dict]) -> None:
        """Fold one :meth:`state` snapshot into this registry **in place**.

        Counters and gauges add, histograms merge bucket-wise (bounds
        must agree for an existing histogram).  Existing metric objects
        are mutated rather than replaced, so handles cached before the
        merge keep reading the merged values.  Merging K disjoint worker
        snapshots counts each observation exactly once — each worker
        resets its registry before running, so a snapshot never contains
        another worker's (or the parent's) observations.
        """
        for entry in state:
            labels = dict(entry["labels"]) if entry["labels"] else None
            if entry["kind"] == "histogram":
                metric = self.histogram(entry["name"], labels,
                                        buckets=entry["bounds"])
                if list(metric.bounds) != list(entry["bounds"]):
                    raise ValueError(
                        f"histogram {entry['name']} bucket bounds differ; "
                        f"cannot merge")
                for i, n in enumerate(entry["bucket_counts"]):
                    metric.bucket_counts[i] += n
                metric.count += entry["count"]
                metric.sum += entry["sum"]
            elif entry["kind"] == "counter":
                self.counter(entry["name"], labels).value += entry["value"]
            else:
                self.gauge(entry["name"], labels).value += entry["value"]

    def __len__(self) -> int:
        return len(self._metrics)


def _render_key(name: str, labels: LabelsKey) -> str:
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


def bridge_perf_counters(registry: Optional[MetricsRegistry] = None) -> None:
    """Project the legacy global perf counters onto the registry.

    Old call sites (``counters.hash_calls += n``) keep working untouched;
    this sets a ``perf_<field>`` counter per field to the current value,
    so one registry snapshot carries both the labeled metrics and the
    legacy bag.  Call it just before exporting.
    """
    from repro.perf.counters import counters

    registry = registry if registry is not None else REGISTRY
    for field, value in counters.snapshot().items():
        registry.counter(f"perf_{field}").value = value


#: The process-wide default registry instrumented layers record into.
REGISTRY = MetricsRegistry()
