"""Exporters: JSONL event dumps, Chrome ``trace_event`` JSON, metrics text.

Every exporter is a pure function of its inputs and uses only simulated
time, so a seeded run exports byte-identically run after run:

* :func:`events_to_jsonl` — one JSON object per line, in emission order
  (ids are sequential), ``sort_keys`` and compact separators pinned;
* :func:`chrome_trace` — the Chrome ``trace_event`` format (open the file
  in Perfetto or chrome://tracing); spans become complete ``"X"`` events,
  open spans become ``"B"``, instants become ``"i"``.  Simulated seconds
  map to trace microseconds, and each distinct ``track`` attribute gets
  its own named thread row;
* :func:`metrics_text` — a plain-text snapshot of a
  :class:`~repro.obs.metrics.MetricsRegistry`, Prometheus-flavoured.

:func:`write_trace_report` bundles all three into a directory — the
``repro trace-report`` CLI scenario and the chaos soak both use it.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    REGISTRY,
    bridge_perf_counters,
)
from repro.obs.span import EventLog

__all__ = ["events_to_jsonl", "chrome_trace", "metrics_text",
           "write_trace_report"]

_JSON_KWARGS = {"sort_keys": True, "separators": (",", ":")}


def _clean_attrs(attrs: dict) -> dict:
    """Attrs restricted to JSON-stable scalars (others become strings)."""
    out = {}
    for key, value in attrs.items():
        if value is None or isinstance(value, (bool, int, float, str)):
            out[key] = value
        else:
            out[key] = str(value)
    return out


# -- JSONL -----------------------------------------------------------------


def events_to_jsonl(log: EventLog) -> str:
    """The log as JSON Lines, one record per span/event, emission order."""
    records: list[tuple[int, dict]] = []
    for span in log.spans:
        records.append((span.span_id, {
            "kind": "span",
            "id": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "t_begin": span.t_begin,
            "t_end": span.t_end,
            "attrs": _clean_attrs(span.attrs),
        }))
    for event in log.events:
        records.append((event.event_id, {
            "kind": "event",
            "id": event.event_id,
            "name": event.name,
            "t": event.time,
            "attrs": _clean_attrs(event.attrs),
        }))
    records.sort(key=lambda pair: pair[0])
    return "\n".join(json.dumps(record, **_JSON_KWARGS)
                     for _id, record in records) + ("\n" if records else "")


# -- Chrome trace_event ----------------------------------------------------

#: Synthetic pid for the whole simulation (one "process" per export).
_PID = 1
_DEFAULT_TRACK = "sim"


def _microseconds(t: float) -> float:
    # Simulated seconds -> trace microseconds.  round() keeps the output
    # tidy; it is a pure function of the input float, so determinism holds.
    return round(t * 1e6, 3)


def chrome_trace(log: EventLog) -> str:
    """The log in Chrome ``trace_event`` JSON (Perfetto-loadable).

    Span/event ``track`` attributes become named thread rows; everything
    without a track lands on the default ``sim`` row.
    """
    tids: dict[str, int] = {}

    def tid_for(attrs: dict) -> int:
        track = attrs.get("track", _DEFAULT_TRACK)
        if not isinstance(track, str):
            track = str(track)
        if track not in tids:
            tids[track] = len(tids) + 1
        return tids[track]

    trace_events: list[dict] = []
    for span in log.spans:
        attrs = _clean_attrs(span.attrs)
        entry = {
            "name": span.name,
            "cat": span.name.split(".", 1)[0],
            "pid": _PID,
            "tid": tid_for(attrs),
            "ts": _microseconds(span.t_begin),
            "args": {"id": span.span_id, "parent": span.parent_id, **attrs},
        }
        if span.t_end is None:
            entry["ph"] = "B"
        else:
            entry["ph"] = "X"
            entry["dur"] = round(_microseconds(span.t_end) - entry["ts"], 3)
        trace_events.append(entry)
    for event in log.events:
        attrs = _clean_attrs(event.attrs)
        trace_events.append({
            "name": event.name,
            "cat": event.name.split(".", 1)[0],
            "ph": "i",
            "s": "t",
            "pid": _PID,
            "tid": tid_for(attrs),
            "ts": _microseconds(event.time),
            "args": {"id": event.event_id, **attrs},
        })
    trace_events.sort(key=lambda e: (e["ts"], e["args"]["id"]))
    metadata = [{
        "name": "process_name", "ph": "M", "pid": _PID, "tid": 0,
        "args": {"name": "repro simulation"},
    }]
    for track, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        metadata.append({
            "name": "thread_name", "ph": "M", "pid": _PID, "tid": tid,
            "args": {"name": track},
        })
    return json.dumps(
        {"displayTimeUnit": "ms", "traceEvents": metadata + trace_events},
        **_JSON_KWARGS)


# -- metrics text ----------------------------------------------------------


def _render_labels(labels: tuple, extra: Optional[tuple[str, str]] = None) -> str:
    pairs = list(labels)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in pairs) + "}"


def _format_value(value) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return str(value)


def metrics_text(registry: Optional[MetricsRegistry] = None,
                 bridge_perf: bool = True) -> str:
    """A plain-text snapshot of the registry, one metric per line.

    With ``bridge_perf`` (the default), the legacy global perf counters
    are first projected in as ``perf_<field>`` so the snapshot is the one
    place to look.  Histograms render cumulative ``_bucket`` lines plus
    ``_count`` and ``_sum``.
    """
    registry = registry if registry is not None else REGISTRY
    if bridge_perf:
        bridge_perf_counters(registry)
    lines: list[str] = []
    for metric in registry.collect():
        if isinstance(metric, Histogram):
            running = 0
            for bound, n in zip(metric.bounds, metric.bucket_counts):
                running += n
                lines.append(
                    f"{metric.name}_bucket"
                    f"{_render_labels(metric.labels, ('le', f'{bound:g}'))}"
                    f" {running}")
            lines.append(
                f"{metric.name}_bucket"
                f"{_render_labels(metric.labels, ('le', '+Inf'))}"
                f" {metric.count}")
            lines.append(f"{metric.name}_count"
                         f"{_render_labels(metric.labels)} {metric.count}")
            lines.append(f"{metric.name}_sum"
                         f"{_render_labels(metric.labels)}"
                         f" {_format_value(metric.sum)}")
        else:
            lines.append(f"{metric.name}{_render_labels(metric.labels)}"
                         f" {_format_value(metric.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- bundled report --------------------------------------------------------


def write_trace_report(out_dir: str, log: EventLog,
                       registry: Optional[MetricsRegistry] = None
                       ) -> dict[str, str]:
    """Write ``trace.json`` + ``events.jsonl`` + ``metrics.txt`` into
    ``out_dir`` (created if missing); returns ``{artifact: path}``."""
    os.makedirs(out_dir, exist_ok=True)
    paths = {
        "trace": os.path.join(out_dir, "trace.json"),
        "events": os.path.join(out_dir, "events.jsonl"),
        "metrics": os.path.join(out_dir, "metrics.txt"),
    }
    with open(paths["trace"], "w", encoding="utf-8") as fh:
        fh.write(chrome_trace(log))
    with open(paths["events"], "w", encoding="utf-8") as fh:
        fh.write(events_to_jsonl(log))
    with open(paths["metrics"], "w", encoding="utf-8") as fh:
        fh.write(metrics_text(registry))
    return paths
