"""Observability reset shared by the test and benchmark harnesses.

The tracer, metrics registry, perf counters, and timing sections are
process-wide singletons; any harness running more than one scenario in a
process must reset them between cases or the second case inherits the
first's numbers.  ``tests/conftest.py`` and ``benchmarks/conftest.py``
both install :func:`fresh_observability` as an autouse fixture, so the
two harnesses can never drift apart again (they once did: the benchmark
suite lacked the reset and leaked metrics state between cases).
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs.metrics import REGISTRY
from repro.obs.span import TRACER
from repro.perf.counters import counters
from repro.perf.timing import reset_sections

__all__ = ["reset_observability", "fresh_observability"]


def reset_observability() -> None:
    """Zero every process-wide instrumentation sink.

    Detaches any tracer log, zeroes metric values in place (cached
    counter/gauge handles stay valid), and clears perf counters and
    timed sections.
    """
    TRACER.detach()
    REGISTRY.reset()
    counters.reset()
    reset_sections()


@contextmanager
def fresh_observability():
    """Reset before the block and guarantee no tracer sink leaks after.

    The conftest autouse fixtures wrap each test/benchmark case in this;
    scripts driving several scenarios can use it directly.
    """
    reset_observability()
    try:
        yield
    finally:
        TRACER.detach()
