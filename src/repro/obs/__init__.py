"""The observability plane: structured spans, labeled metrics, exporters.

Three pieces, used together or alone:

* :mod:`repro.obs.span` — :class:`Span`/:class:`EventLog` plus the
  process-wide :data:`TRACER` the instrumented layers (netsim, tor, core,
  functions) emit into.  Free when detached.
* :mod:`repro.obs.metrics` — the labeled :data:`REGISTRY` of counters,
  gauges, and histograms, with the legacy perf counters bridged on.
* :mod:`repro.obs.export` — deterministic JSONL / Chrome-trace / text
  exporters (``repro trace-report`` on the CLI).

Everything runs on the simulated clock: no exporter output ever contains
wall time, so a seeded run's artifacts are byte-identical across runs.
"""

from repro.obs.export import (
    chrome_trace,
    events_to_jsonl,
    metrics_text,
    write_trace_report,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    bridge_perf_counters,
)
from repro.obs.span import TRACER, EventLog, InstantEvent, Span, Tracer

__all__ = [
    "Span", "InstantEvent", "EventLog", "Tracer", "TRACER",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "REGISTRY",
    "DEFAULT_BUCKETS", "bridge_perf_counters",
    "events_to_jsonl", "chrome_trace", "metrics_text", "write_trace_report",
]
