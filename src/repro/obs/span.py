"""Structured spans and instant events on the simulated clock.

The observability plane answers "what happened inside this circuit build /
Bento session / chaos run" without print-debugging.  Layers emit into an
:class:`EventLog` through the process-wide :data:`TRACER`:

* a **span** brackets an operation in simulated time — ``begin_span`` at
  the start, :meth:`Span.end` when it completes — and carries a parent
  link plus key/value attributes;
* an **instant event** marks a point occurrence (a fault injected, a
  retry, a replica deploy).

Instrumentation must cost nearly nothing when nobody is looking, so every
call site guards on ``TRACER.log``::

    log = TRACER.log
    span = log.begin_span("tor.circuit_build", sim.now) if log else None
    ...
    if span is not None:
        span.end(sim.now, ok=True)

With no sink attached that is one attribute load and a comparison — no
allocation, no call.  All timestamps are **simulated seconds**; nothing in
this module (or the exporters) ever reads the wall clock, so identical
seeds yield byte-identical trace exports.

Span and event ids are assigned sequentially per :class:`EventLog`; since
the simulator dispatches events deterministically, the ids — and therefore
every exported artifact — are deterministic too.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["Span", "InstantEvent", "EventLog", "Tracer", "TRACER"]


class Span:
    """One bracketed operation: begin/end times, parent link, attributes.

    Created via :meth:`EventLog.begin_span`; mutate with :meth:`annotate`
    and close with :meth:`end`.  ``t_end`` is ``None`` while open.
    """

    __slots__ = ("span_id", "parent_id", "name", "t_begin", "t_end", "attrs")

    def __init__(self, span_id: int, parent_id: Optional[int], name: str,
                 t_begin: float, attrs: dict[str, Any]) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.t_begin = t_begin
        self.t_end: Optional[float] = None
        self.attrs = attrs

    @property
    def open(self) -> bool:
        """Whether the span has not been ended yet."""
        return self.t_end is None

    @property
    def duration(self) -> Optional[float]:
        """Simulated seconds from begin to end (None while open)."""
        if self.t_end is None:
            return None
        return self.t_end - self.t_begin

    def annotate(self, **attrs: Any) -> "Span":
        """Merge attributes into the span; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def end(self, t_end: float, **attrs: Any) -> None:
        """Close the span at simulated time ``t_end``.

        Ending an already-ended span is a no-op (recovery paths may race
        their error handlers); the first end wins.  ``t_end`` is clamped
        to ``t_begin`` so clock rounding can never produce a negative
        duration.
        """
        if self.t_end is not None:
            return
        self.t_end = t_end if t_end >= self.t_begin else self.t_begin
        if attrs:
            self.attrs.update(attrs)

    def __repr__(self) -> str:
        state = "open" if self.t_end is None else f"dur={self.duration:.6f}"
        return f"<Span #{self.span_id} {self.name} {state}>"


class InstantEvent:
    """A point occurrence: a timestamp, a name, and attributes."""

    __slots__ = ("event_id", "name", "time", "attrs")

    def __init__(self, event_id: int, name: str, time: float,
                 attrs: dict[str, Any]) -> None:
        self.event_id = event_id
        self.name = name
        self.time = time
        self.attrs = attrs

    def __repr__(self) -> str:
        return f"<InstantEvent #{self.event_id} {self.name} t={self.time:g}>"


class EventLog:
    """The sink spans and events are emitted into.

    Keeps spans and instant events in emission order; ids are sequential
    across both (one shared counter), so emission order is recoverable
    from ids alone and exports are deterministic.
    """

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.events: list[InstantEvent] = []
        self._next_id = 1

    def begin_span(self, name: str, t: float,
                   parent: Optional[Span] = None, **attrs: Any) -> Span:
        """Open a span named ``name`` at simulated time ``t``."""
        span = Span(self._next_id,
                    parent.span_id if parent is not None else None,
                    name, t, attrs)
        self._next_id += 1
        self.spans.append(span)
        return span

    def instant(self, name: str, t: float, **attrs: Any) -> InstantEvent:
        """Record an instant event at simulated time ``t``."""
        event = InstantEvent(self._next_id, name, t, attrs)
        self._next_id += 1
        self.events.append(event)
        return event

    def open_spans(self) -> list[Span]:
        """Spans begun but not yet ended (emission order)."""
        return [span for span in self.spans if span.t_end is None]

    def clear(self) -> None:
        """Drop everything recorded and restart the id sequence."""
        self.spans.clear()
        self.events.clear()
        self._next_id = 1

    # -- snapshot / merge (sharded-kernel support) ------------------------

    def state(self) -> dict:
        """Serializable full state (plain data; round-trips via merge).

        A sharded worker ships this over a pipe; the parent folds it into
        its own log with :meth:`merge_state`.
        """
        return {
            "spans": [[s.span_id, s.parent_id, s.name, s.t_begin, s.t_end,
                       dict(s.attrs)] for s in self.spans],
            "events": [[e.event_id, e.name, e.time, dict(e.attrs)]
                       for e in self.events],
        }

    def merge_state(self, state: dict, track_prefix: str = "") -> None:
        """Append one :meth:`state` snapshot to this log **in place**.

        Ids are rebased past this log's sequence (parent links remapped
        with them) so merged ids stay unique and emission order inside
        each snapshot is preserved; the log object itself — and anything
        holding a reference to it — survives the merge.  Merging K worker
        snapshots therefore concatenates K disjoint runs without ever
        duplicating a span.  ``track_prefix`` is prepended to each item's
        ``track`` attribute (e.g. ``"shard3/"``) so per-shard timelines
        stay distinguishable in the exported trace.
        """
        offset = self._next_id - 1
        highest = 0
        for span_id, parent_id, name, t_begin, t_end, attrs in state["spans"]:
            if track_prefix and "track" in attrs:
                attrs = dict(attrs, track=f"{track_prefix}{attrs['track']}")
            span = Span(span_id + offset,
                        parent_id + offset if parent_id is not None else None,
                        name, t_begin, attrs)
            span.t_end = t_end
            self.spans.append(span)
            highest = max(highest, span_id)
        for event_id, name, time, attrs in state["events"]:
            if track_prefix and "track" in attrs:
                attrs = dict(attrs, track=f"{track_prefix}{attrs['track']}")
            self.events.append(InstantEvent(event_id + offset, name, time,
                                            attrs))
            highest = max(highest, event_id)
        self._next_id = offset + highest + 1

    def __len__(self) -> int:
        return len(self.spans) + len(self.events)

    def __repr__(self) -> str:
        return (f"<EventLog spans={len(self.spans)} "
                f"events={len(self.events)}>")


class Tracer:
    """The process-wide instrumentation hub.

    Holds at most one attached :class:`EventLog`.  ``TRACER.log`` is
    ``None`` when detached — the single cheap check every instrumentation
    site performs before allocating anything.
    """

    __slots__ = ("log",)

    def __init__(self) -> None:
        self.log: Optional[EventLog] = None

    def attach(self, log: Optional[EventLog] = None) -> EventLog:
        """Attach (and return) an event log; replaces any previous sink."""
        if log is None:
            log = EventLog()
        self.log = log
        return log

    def detach(self) -> Optional[EventLog]:
        """Detach and return the current sink (None if already detached)."""
        log, self.log = self.log, None
        return log

    def begin(self, name: str, t: float, parent: Optional[Span] = None,
              **attrs: Any) -> Optional[Span]:
        """Open a span if a sink is attached; returns None otherwise.

        Prefer guarding on ``TRACER.log`` at hot sites — this convenience
        still builds the ``attrs`` dict before the check.
        """
        log = self.log
        if log is None:
            return None
        return log.begin_span(name, t, parent=parent, **attrs)

    def event(self, name: str, t: float, **attrs: Any) -> None:
        """Record an instant event if a sink is attached."""
        log = self.log
        if log is not None:
            log.instant(name, t, **attrs)


#: The process-wide tracer every instrumented layer emits through.
TRACER = Tracer()
