"""Erasure coding for the Shard function (§9.3).

"Shard uses standard linear encoding techniques to ensure that retrieving
any k of the N shards suffices to reconstruct the file" — implemented here
as a systematic Reed-Solomon-style code over GF(256) with numpy-vectorized
table arithmetic.
"""

from repro.coding.gf256 import gf_add, gf_div, gf_inv, gf_mul, gf_pow
from repro.coding.erasure import (
    CodingError,
    Shard,
    decode_shards,
    encode_shards,
)

__all__ = [
    "gf_add",
    "gf_mul",
    "gf_div",
    "gf_inv",
    "gf_pow",
    "Shard",
    "encode_shards",
    "decode_shards",
    "CodingError",
]
