"""GF(2^8) arithmetic with the AES polynomial (0x11B).

Scalar helpers for clarity plus numpy lookup tables for bulk encoding.
"""

from __future__ import annotations

import numpy as np

_POLY = 0x11B
_GENERATOR = 0x03

# Build exp/log tables once at import.
EXP = np.zeros(512, dtype=np.uint8)
LOG = np.zeros(256, dtype=np.int32)
_value = 1
for _i in range(255):
    EXP[_i] = _value
    LOG[_value] = _i
    # multiply by the generator 0x03: v*3 = v*2 ^ v
    doubled = _value << 1
    if doubled & 0x100:
        doubled ^= _POLY
    _value = doubled ^ _value
for _i in range(255, 512):
    EXP[_i] = EXP[_i - 255]


def gf_add(a: int, b: int) -> int:
    """Addition (and subtraction) in GF(256) is XOR."""
    return a ^ b


def gf_mul(a: int, b: int) -> int:
    """Multiplication via log/antilog tables."""
    if a == 0 or b == 0:
        return 0
    return int(EXP[int(LOG[a]) + int(LOG[b])])


def gf_pow(a: int, n: int) -> int:
    """Exponentiation ``a**n``."""
    if n == 0:
        return 1
    if a == 0:
        return 0
    return int(EXP[(int(LOG[a]) * n) % 255])


def gf_inv(a: int) -> int:
    """Multiplicative inverse; raises on zero."""
    if a == 0:
        raise ZeroDivisionError("zero has no inverse in GF(256)")
    return int(EXP[255 - int(LOG[a])])


def gf_div(a: int, b: int) -> int:
    """Division ``a / b``."""
    if b == 0:
        raise ZeroDivisionError("division by zero in GF(256)")
    if a == 0:
        return 0
    return int(EXP[(int(LOG[a]) - int(LOG[b])) % 255])


def gf_mul_vector(coefficient: int, data: np.ndarray) -> np.ndarray:
    """Multiply every byte of ``data`` by ``coefficient`` (vectorized)."""
    if coefficient == 0:
        return np.zeros_like(data)
    if coefficient == 1:
        return data.copy()
    log_c = int(LOG[coefficient])
    nonzero = data != 0
    out = np.zeros_like(data)
    out[nonzero] = EXP[log_c + LOG[data[nonzero].astype(np.int32)]]
    return out
