"""Systematic k-of-N erasure coding.

The first ``k`` shards are the data stripes themselves; the remaining
``N - k`` are parity rows of a Vandermonde-style matrix, so *any* ``k``
shards reconstruct the file.  The degenerate ``k == 1`` case is plain
replication, matching the paper's "in the trivial case where k = 1 and
N > 1, Shard simply replicates".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.coding.gf256 import gf_inv, gf_mul, gf_mul_vector, gf_pow
from repro.util.errors import ReproError


class CodingError(ReproError):
    """Bad parameters or not enough shards to reconstruct."""


@dataclass(frozen=True)
class Shard:
    """One encoded piece: its row index and payload."""

    index: int
    data: bytes


def _stripes(data: bytes, k: int) -> np.ndarray:
    """Split (and zero-pad) data into a k x stripe_len byte matrix."""
    stripe_len = (len(data) + k - 1) // k if data else 1
    padded = data.ljust(k * stripe_len, b"\x00")
    return np.frombuffer(padded, dtype=np.uint8).reshape(k, stripe_len).copy()


def _row_coefficients(index: int, k: int) -> list[int]:
    """Row ``index`` of the encoding matrix.

    Rows 0..k-1 form the identity (systematic); parity row ``i`` is the
    Vandermonde row ``[a**0, a**1, ..., a**(k-1)]`` with ``a = i - k + 2``
    (distinct nonzero elements per row).
    """
    if index < k:
        return [1 if j == index else 0 for j in range(k)]
    a = index - k + 2      # 2, 3, 4, ... — distinct and nonzero
    return [gf_pow(a, j) for j in range(k)]


def encode_shards(data: bytes, n: int, k: int) -> list[Shard]:
    """Encode ``data`` into ``n`` shards, any ``k`` of which reconstruct it."""
    if not 1 <= k <= n:
        raise CodingError(f"need 1 <= k <= n, got k={k} n={n}")
    if n - k + 1 > 254:
        raise CodingError("too many parity shards for GF(256)")
    if k == 1:
        return [Shard(index=i, data=bytes(data)) for i in range(n)]
    stripes = _stripes(data, k)
    shards: list[Shard] = []
    for index in range(n):
        coefficients = _row_coefficients(index, k)
        if index < k:
            payload = stripes[index].tobytes()
        else:
            acc = np.zeros(stripes.shape[1], dtype=np.uint8)
            for coefficient, stripe in zip(coefficients, stripes):
                acc ^= gf_mul_vector(coefficient, stripe)
            payload = acc.tobytes()
        shards.append(Shard(index=index, data=payload))
    return shards


def decode_shards(shards: list[Shard], k: int, original_len: int) -> bytes:
    """Reconstruct the original bytes from any ``k`` distinct shards."""
    if k == 1:
        if not shards:
            raise CodingError("no shards supplied")
        return shards[0].data[:original_len]
    chosen: dict[int, Shard] = {}
    for shard in shards:
        chosen.setdefault(shard.index, shard)
    if len(chosen) < k:
        raise CodingError(f"need {k} distinct shards, have {len(chosen)}")
    picked = sorted(chosen.values(), key=lambda s: s.index)[:k]
    stripe_len = len(picked[0].data)
    if any(len(s.data) != stripe_len for s in picked):
        raise CodingError("shards have inconsistent lengths")

    # Solve the k x k system row-reduce style in GF(256).
    matrix = [list(_row_coefficients(s.index, k)) for s in picked]
    rows = [np.frombuffer(s.data, dtype=np.uint8).copy() for s in picked]

    for col in range(k):
        pivot = next((r for r in range(col, k) if matrix[r][col] != 0), None)
        if pivot is None:
            raise CodingError("singular decode matrix (duplicate shards?)")
        matrix[col], matrix[pivot] = matrix[pivot], matrix[col]
        rows[col], rows[pivot] = rows[pivot], rows[col]
        inv = gf_inv(matrix[col][col])
        matrix[col] = [gf_mul(inv, v) for v in matrix[col]]
        rows[col] = gf_mul_vector(inv, rows[col])
        for r in range(k):
            if r != col and matrix[r][col] != 0:
                factor = matrix[r][col]
                matrix[r] = [v ^ gf_mul(factor, m)
                             for v, m in zip(matrix[r], matrix[col])]
                rows[r] ^= gf_mul_vector(factor, rows[col])

    data = b"".join(row.tobytes() for row in rows)
    return data[:original_len]
