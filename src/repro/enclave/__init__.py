"""The simulated trusted-execution substrate (Intel SGX + conclaves).

The paper runs functions inside *conclaves* ("containers of enclaves",
Herwig et al. 2020) on SGX hardware.  Offline reproduction cannot use real
SGX, so this package models the pieces Bento's guarantees rest on, with the
*checks* performed for real:

* :mod:`~repro.enclave.sgx` -- enclaves with code measurement and the EPC
  memory model (128 MiB total, 93 MiB usable, paging overhead when
  oversubscribed — the numbers §7.3 analyses),
* :mod:`~repro.enclave.attestation` -- quotes signed by per-platform keys
  and a simulated Intel Attestation Service issuing RSA-signed reports with
  TCB status (supporting both client-verified and OCSP-style stapled
  verification, §5.4),
* :mod:`~repro.enclave.sealing` -- measurement-bound sealed storage,
* :mod:`~repro.enclave.fsprotect` -- the encrypted filesystem with an
  ephemeral in-enclave key ("FS Protect"),
* :mod:`~repro.enclave.conclave` -- the conclave bundling an app enclave,
  FS Protect, and the attested secure channel to the function loader.
"""

from repro.enclave.sgx import (
    EPC_TOTAL_BYTES,
    EPC_USABLE_BYTES,
    Enclave,
    EnclaveError,
    EnclaveHost,
    EnclaveImage,
)
from repro.enclave.attestation import (
    AttestationError,
    AttestationReport,
    IntelAttestationService,
    Quote,
    TCB_STATUS_OK,
    TCB_STATUS_OUT_OF_DATE,
)
from repro.enclave.sealing import seal_data, unseal_data, SealingError
from repro.enclave.fsprotect import FSProtect
from repro.enclave.conclave import Conclave, ConclaveError, SecureChannel

__all__ = [
    "EPC_TOTAL_BYTES",
    "EPC_USABLE_BYTES",
    "Enclave",
    "EnclaveError",
    "EnclaveHost",
    "EnclaveImage",
    "Quote",
    "AttestationReport",
    "AttestationError",
    "IntelAttestationService",
    "TCB_STATUS_OK",
    "TCB_STATUS_OUT_OF_DATE",
    "seal_data",
    "unseal_data",
    "SealingError",
    "FSProtect",
    "Conclave",
    "ConclaveError",
    "SecureChannel",
]
