"""Remote attestation: quotes and the (simulated) Intel Attestation Service.

The flow mirrors §5.4: an enclave produces a *quote* signed by its
platform's attestation key; the IAS verifies the platform signature,
checks the platform's TCB level against the currently required one
("check the current TCB version of the remote system to see if it has
been patched against known vulnerabilities"), and returns an
*attestation verification report* signed by Intel's key.

Two client verification paths are supported, as in the paper:

* **client-verified** — the client submits the quote to the IAS itself
  (one extra network round trip, but the load is uncorrelated with
  function upload), and
* **stapled** — the Bento server pre-fetches the report and returns it
  with its response, like OCSP stapling; the client checks only the IAS
  signature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.netsim.simulator import Sleep, blocking
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey
from repro.obs.metrics import REGISTRY as _metrics
from repro.util.errors import ReproError
from repro.util.rng import DeterministicRandom
from repro.util.serialization import canonical_encode

# Cached registry handles (the registry resets values in place).
_HIT_ATTESTATION = _metrics.counter("cache_hits", {"layer": "attestation"})
_MISS_ATTESTATION = _metrics.counter("cache_misses", {"layer": "attestation"})

TCB_STATUS_OK = "OK"
TCB_STATUS_OUT_OF_DATE = "GROUP_OUT_OF_DATE"

# One-way latency to Intel's attestation endpoint (WAN round trip).
IAS_LATENCY_S = 0.040


class AttestationError(ReproError):
    """Bad quotes, unknown platforms, forged reports."""


@dataclass
class Quote:
    """An enclave's signed statement of its own identity."""

    platform_id: str
    measurement: str
    tcb_level: int
    report_data: bytes
    signature: bytes = b""

    def signed_body(self) -> bytes:
        """The canonical bytes covered by the signature."""
        return canonical_encode({
            "platform": self.platform_id,
            "measurement": self.measurement,
            "tcb": self.tcb_level,
            "report_data": self.report_data,
        })

    def to_wire(self) -> dict:
        """A plain-dict form safe to canonically encode."""
        return {
            "platform": self.platform_id,
            "measurement": self.measurement,
            "tcb": self.tcb_level,
            "report_data": self.report_data,
            "signature": self.signature,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "Quote":
        """Reconstruct from :meth:`to_wire` output."""
        return cls(platform_id=wire["platform"], measurement=wire["measurement"],
                   tcb_level=int(wire["tcb"]), report_data=wire["report_data"],
                   signature=wire["signature"])


@dataclass
class AttestationReport:
    """The IAS's signed verdict on a quote."""

    quote: Quote
    status: str
    timestamp: float
    signature: bytes = b""

    def signed_body(self) -> bytes:
        """The canonical bytes covered by the signature."""
        return canonical_encode({
            "quote": self.quote.to_wire(),
            "status": self.status,
            "timestamp": self.timestamp,
        })

    def verify(self, ias_key: RsaPublicKey,
               expected_measurement: Optional[str] = None,
               require_ok: bool = True) -> bool:
        """Client-side report validation.

        Checks the IAS signature, optionally the enclave measurement, and
        (by default) that the platform TCB was up to date.
        """
        if not ias_key.verify(self.signed_body(), self.signature):
            return False
        if expected_measurement is not None and \
                self.quote.measurement != expected_measurement:
            return False
        if require_ok and self.status != TCB_STATUS_OK:
            return False
        return True

    def to_wire(self) -> dict:
        """A plain-dict form safe to canonically encode."""
        return {
            "quote": self.quote.to_wire(),
            "status": self.status,
            "timestamp": self.timestamp,
            "signature": self.signature,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "AttestationReport":
        """Reconstruct from :meth:`to_wire` output."""
        return cls(quote=Quote.from_wire(wire["quote"]), status=wire["status"],
                   timestamp=float(wire["timestamp"]), signature=wire["signature"])


@dataclass
class _PlatformRecord:
    key: RsaPublicKey
    tcb_level: int
    revoked: bool = False


class IntelAttestationService:
    """The trusted third party that vouches for genuine platforms."""

    def __init__(self, rng: DeterministicRandom, required_tcb_level: int = 2,
                 latency_s: float = IAS_LATENCY_S) -> None:
        self._key = RsaKeyPair.generate(rng.fork("ias-key"))
        self._platforms: dict[str, _PlatformRecord] = {}
        self.required_tcb_level = required_tcb_level
        self.latency_s = latency_s
        self.reports_issued = 0
        # (platform_id, measurement) -> (signed_body, signature) of the
        # last quote whose platform signature checked out.  A stapled
        # flow verifies the *same* quote twice — once server-side, once
        # client-side — and the second check only needs a byte compare.
        # Reports are always re-signed fresh (timestamps differ), and any
        # platform lifecycle change evicts the platform's entries.
        self._quote_cache: dict[tuple[str, str], tuple[bytes, bytes]] = {}

    @property
    def public_key(self) -> RsaPublicKey:
        """The verification key peers should pin."""
        return self._key.public

    # -- platform management (manufacturing / patching) -----------------------

    def register_platform(self, platform_id: str, key: RsaPublicKey,
                          tcb_level: int) -> None:
        """Record a genuine platform's attestation key and TCB level."""
        self._platforms[platform_id] = _PlatformRecord(key=key, tcb_level=tcb_level)
        self._evict_platform(platform_id)

    def revoke_platform(self, platform_id: str) -> None:
        """EPID revocation (e.g., a compromised platform key)."""
        record = self._platforms.get(platform_id)
        if record is not None:
            record.revoked = True
        self._evict_platform(platform_id)

    def patch_platform(self, platform_id: str, new_tcb_level: int) -> None:
        """A microcode update raised this platform's TCB level."""
        record = self._platforms.get(platform_id)
        if record is not None:
            record.tcb_level = new_tcb_level
        self._evict_platform(platform_id)

    def _evict_platform(self, platform_id: str) -> None:
        """Drop cached quote verdicts after any platform lifecycle change."""
        for key in [k for k in self._quote_cache if k[0] == platform_id]:
            del self._quote_cache[key]

    # -- verification ------------------------------------------------------------

    def verify_quote(self, quote: Quote, now: float = 0.0) -> AttestationReport:
        """Validate a quote and issue a signed report.

        Raises :class:`AttestationError` for unknown/revoked platforms or
        a bad platform signature; an out-of-date TCB yields a report whose
        ``status`` says so (clients decide whether to accept it).
        """
        record = self._platforms.get(quote.platform_id)
        if record is None:
            raise AttestationError(f"unknown platform: {quote.platform_id}")
        if record.revoked:
            raise AttestationError(f"platform revoked: {quote.platform_id}")
        # The platform-signature check is the expensive step; a quote
        # byte-identical to the last one this platform verified (the
        # stapled-then-client-checked flow) is vouched for by compare.
        cache_key = (quote.platform_id, quote.measurement)
        body = quote.signed_body()
        cached = self._quote_cache.get(cache_key)
        if cached is not None and cached == (body, quote.signature):
            _HIT_ATTESTATION.value += 1
        else:
            _MISS_ATTESTATION.value += 1
            if not record.key.verify(body, quote.signature):
                raise AttestationError("quote signature invalid")
            self._quote_cache[cache_key] = (body, quote.signature)
        if quote.tcb_level != record.tcb_level:
            raise AttestationError("quote TCB level does not match platform record")
        status = (TCB_STATUS_OK if record.tcb_level >= self.required_tcb_level
                  else TCB_STATUS_OUT_OF_DATE)
        report = AttestationReport(quote=quote, status=status, timestamp=now)
        report.signature = self._key.sign(report.signed_body())
        self.reports_issued += 1
        return report

    @blocking
    def verify_quote_blocking(self, thread, quote: Quote) -> AttestationReport:
        """Quote verification including the WAN round trip to Intel."""
        yield Sleep(2.0 * self.latency_s)
        return self.verify_quote(quote, now=thread.sim.now)
