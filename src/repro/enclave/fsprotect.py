"""FS Protect: the conclave's encrypted, integrity-protected filesystem.

§5.4: "FS Protect generates an ephemeral encryption key when the
filesystem is launched in an enclave; the container ensures that the
enclaved filesystem is the only writable filesystem available to the
function, and therefore that all filesystem writes are encrypted."

Every file is stored as AEAD ciphertext (nonce bound to path + version, so
replaying an old version of one file into another path fails
authentication).  :meth:`operator_view` is what the Bento operator can see
on disk — ciphertext only — which is the paper's plausible-deniability
argument made concrete (§6.2).
"""

from __future__ import annotations

from repro.crypto.aead import AeadError, AeadKey
from repro.sandbox.memfs import ChrootView
from repro.util.errors import ReproError
from repro.util.serialization import canonical_decode, canonical_encode


class FSProtectError(ReproError):
    """Integrity failures: the operator (or anyone) tampered with a file."""


class FSProtect:
    """An encrypted view over a container's chroot filesystem."""

    def __init__(self, backing: ChrootView, ephemeral_key: bytes) -> None:
        self._backing = backing
        self._aead = AeadKey(ephemeral_key)
        self._versions: dict[str, int] = {}

    # -- enclave-side interface (what the function sees) ----------------------

    def write_file(self, path: str, data: bytes) -> None:
        """Encrypt and store ``data`` at ``path``."""
        version = self._versions.get(path, 0) + 1
        nonce = canonical_encode({"path": path, "version": version})
        sealed = self._aead.seal(nonce, data, aad=path.encode())
        envelope = canonical_encode({"version": version, "sealed": sealed})
        self._backing.write_file(path, envelope)
        self._versions[path] = version

    def read_file(self, path: str) -> bytes:
        """Decrypt and verify ``path``; raises on tampering or rollback."""
        envelope = canonical_decode(self._backing.read_file(path))
        version = int(envelope["version"])
        expected = self._versions.get(path)
        if expected is not None and version != expected:
            raise FSProtectError(f"rollback detected on {path}")
        nonce = canonical_encode({"path": path, "version": version})
        try:
            return self._aead.open(nonce, envelope["sealed"], aad=path.encode())
        except (AeadError, KeyError, TypeError) as exc:
            raise FSProtectError(f"integrity check failed on {path}") from exc

    def delete(self, path: str) -> None:
        """Remove a file."""
        self._backing.delete(path)
        self._versions.pop(path, None)

    def exists(self, path: str) -> bool:
        """Does the path exist?"""
        return self._backing.exists(path)

    def file_size(self, path: str) -> int:
        """Plaintext size (requires decryption, like a real enclaved stat)."""
        return len(self.read_file(path))

    def listdir(self, path: str = "/") -> list[str]:
        """Immediate children of a directory."""
        return self._backing.listdir(path)

    def walk_files(self, path: str = "/") -> list[str]:
        """All file paths under a directory."""
        return self._backing.walk_files(path)

    # -- operator-side interface (what the host can see) ------------------------

    def operator_view(self, path: str) -> bytes:
        """The raw on-disk bytes: ciphertext envelopes only."""
        return self._backing.read_file(path)
