"""Sealed storage: data bound to (enclave measurement, platform).

Only the same enclave code on the same platform can unseal — the property
real SGX derives from its fused sealing keys, reproduced here with real
AEAD under a key derived from the platform secret and the measurement.
"""

from __future__ import annotations

from repro.crypto.aead import AeadError, AeadKey
from repro.util.errors import ReproError

_SEAL_NONCE = b"sgx-seal"


class SealingError(ReproError):
    """Unsealing with the wrong enclave/platform key."""


def seal_data(sealing_key: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
    """Seal ``plaintext`` under an enclave's sealing key."""
    return AeadKey(sealing_key).seal(_SEAL_NONCE, plaintext, aad=aad)


def unseal_data(sealing_key: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
    """Unseal; raises :class:`SealingError` if the key (or data) is wrong."""
    try:
        return AeadKey(sealing_key).open(_SEAL_NONCE, sealed, aad=aad)
    except AeadError as exc:
        raise SealingError("unsealing failed (wrong enclave or platform)") from exc
