"""The SGX model: enclaves, measurement, and the EPC memory budget.

§7.3: "SGX provides a limited amount of protected memory (128MB), with
only 93MB of this usable by applications ... SGX has support for paging;
enclaves could be paged out if they are not currently being invoked."
This module reproduces exactly that accounting: launching an enclave
charges the host's EPC; oversubscription is allowed (paging) but marks the
enclave so callers can apply a paging latency penalty.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.crypto.kdf import hkdf
from repro.crypto.rsa import RsaKeyPair
from repro.util.errors import ReproError
from repro.util.rng import DeterministicRandom

if TYPE_CHECKING:  # pragma: no cover
    from repro.enclave.attestation import IntelAttestationService, Quote

EPC_TOTAL_BYTES = 128 * 1024 * 1024
EPC_USABLE_BYTES = 93 * 1024 * 1024

# Latency cost of an EPC page fault round trip, applied per message handled
# by an enclave that is currently paged out (coarse, but the right shape).
PAGING_PENALTY_S = 0.002
# Cost of an enclave transition (ECALL/OCALL pair); [34] found these
# nominal relative to Tor circuit latency.
TRANSITION_COST_S = 0.00002


class EnclaveError(ReproError):
    """Launch failures, use-after-terminate, EPC exhaustion in strict mode."""


@dataclass(frozen=True)
class EnclaveImage:
    """Code plus configuration; identity is the measurement over both.

    Measurement covers the *execution environment* — the Bento server,
    loader and Python runtime — not individual user functions (§5.4:
    "the only code needing attestation is the Bento execution
    environment").
    """

    name: str
    code: bytes
    version: int = 1

    @property
    def measurement(self) -> str:
        """MRENCLAVE: the hash of the initial enclave contents.

        Memoized: the image is frozen, and this is read on every quote
        and conclave launch.
        """
        cached = self.__dict__.get("_measurement")
        if cached is None:
            material = (self.name.encode() + b"\x00"
                        + self.version.to_bytes(4, "big") + self.code)
            cached = hashlib.sha256(material).hexdigest()
            object.__setattr__(self, "_measurement", cached)
        return cached


class EnclaveHost:
    """One machine's SGX platform: EPC budget plus an attestation key."""

    def __init__(self, sim, ias: "IntelAttestationService",
                 rng: Optional[DeterministicRandom] = None,
                 tcb_level: int = 2,
                 epc_usable: int = EPC_USABLE_BYTES) -> None:
        self.sim = sim
        self.ias = ias
        # Numbered per IAS (i.e. per simulated world), NOT via a module
        # counter: a process-global counter would give different ids — and
        # different id *lengths* on the wire — on a second same-seed run.
        self.platform_id = f"platform-{len(ias._platforms) + 1}"
        self.tcb_level = tcb_level
        self.epc_usable = epc_usable
        self.epc_committed = 0
        self.enclaves: list[Enclave] = []
        rng = rng or sim.rng.fork(f"sgx:{self.platform_id}")
        self._attestation_key = RsaKeyPair.generate(rng.fork("attestation"))
        # The per-platform sealing root (fused into the CPU on real parts).
        self._sealing_secret = rng.randbytes(32)
        ias.register_platform(self.platform_id, self._attestation_key.public,
                              tcb_level)

    # -- launch / memory -----------------------------------------------------

    def launch(self, image: EnclaveImage, heap_bytes: int,
               strict: bool = False) -> "Enclave":
        """Create an enclave.

        ``strict=True`` refuses to oversubscribe the EPC; the default
        allows it and relies on paging, as §7.3 describes.
        """
        if heap_bytes < 0:
            raise EnclaveError("heap size must be non-negative")
        size = heap_bytes + len(image.code)
        if strict and self.epc_committed + size > self.epc_usable:
            raise EnclaveError(
                f"EPC exhausted: {self.epc_committed + size} > {self.epc_usable}")
        self.epc_committed += size
        enclave = Enclave(self, image, size)
        self.enclaves.append(enclave)
        return enclave

    def _release(self, enclave: "Enclave") -> None:
        if enclave in self.enclaves:
            self.enclaves.remove(enclave)
            self.epc_committed -= enclave.memory_size

    @property
    def oversubscribed(self) -> bool:
        """Is the EPC over budget (some enclaves paged out)?"""
        return self.epc_committed > self.epc_usable

    def paging_penalty(self) -> float:
        """Extra latency per enclave invocation under current pressure."""
        if not self.oversubscribed:
            return 0.0
        overcommit = self.epc_committed / self.epc_usable - 1.0
        return PAGING_PENALTY_S * (1.0 + overcommit)

    def sealing_key_for(self, measurement: str) -> bytes:
        """The MRENCLAVE-bound sealing key (same enclave, same platform)."""
        return hkdf(self._sealing_secret, info=measurement.encode(), length=32)


class Enclave:
    """A launched enclave: protected memory, quotes, sealing."""

    def __init__(self, host: EnclaveHost, image: EnclaveImage,
                 memory_size: int) -> None:
        self.host = host
        self.image = image
        self.memory_size = memory_size
        self.measurement = image.measurement
        self.terminated = False
        self.invocation_count = 0

    def quote(self, report_data: bytes) -> "Quote":
        """Produce an attestation quote binding ``report_data`` to this
        enclave's measurement and the platform's TCB level."""
        from repro.enclave.attestation import Quote  # cycle guard

        self._ensure_live()
        quote = Quote(
            platform_id=self.host.platform_id,
            measurement=self.measurement,
            tcb_level=self.host.tcb_level,
            report_data=report_data,
        )
        quote.signature = self.host._attestation_key.sign(quote.signed_body())
        return quote

    def grow(self, nbytes: int) -> None:
        """Add EPC pages post-launch (SGX2-style dynamic memory)."""
        self._ensure_live()
        if nbytes < 0:
            raise EnclaveError("cannot shrink an enclave")
        self.memory_size += nbytes
        self.host.epc_committed += nbytes

    def invoke_cost(self) -> float:
        """Simulated latency for one enter/exit of this enclave."""
        self._ensure_live()
        self.invocation_count += 1
        return TRANSITION_COST_S + self.host.paging_penalty()

    def sealing_key(self) -> bytes:
        """This enclave's sealing key (measurement + platform bound)."""
        self._ensure_live()
        return self.host.sealing_key_for(self.measurement)

    def terminate(self) -> None:
        """Destroy the enclave; its EPC pages return to the host."""
        if not self.terminated:
            self.terminated = True
            self.host._release(self)

    def _ensure_live(self) -> None:
        if self.terminated:
            raise EnclaveError("enclave is terminated")
