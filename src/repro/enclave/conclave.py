"""Conclaves: the container-of-enclaves hosting a function (§5.4).

A :class:`Conclave` bundles:

* an application enclave holding the Bento execution environment
  (launched from a named :class:`~repro.enclave.sgx.EnclaveImage`),
* FS Protect mounted over the container's chroot with a fresh ephemeral
  key,
* quote generation for remote attestation, and
* the attested :class:`SecureChannel` the Bento client uses to upload its
  function ("the Bento client attests the container's image and
  establishes a secure TLS channel to the container's function loader").

The per-conclave memory overhead (7.3 MB, §7.3) is charged against the
host's EPC alongside the function's own footprint.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.crypto.aead import AeadError, AeadKey
from repro.crypto.dh import DiffieHellman
from repro.crypto.kdf import hkdf
from repro.enclave.attestation import AttestationReport
from repro.enclave.fsprotect import FSProtect
from repro.enclave.sgx import Enclave, EnclaveHost, EnclaveImage
from repro.sandbox.memfs import ChrootView
from repro.util.errors import ReproError
from repro.util.rng import DeterministicRandom

CONCLAVE_OVERHEAD_BYTES = int(7.3 * 1024 * 1024)   # §7.3's measured figure


class ConclaveError(ReproError):
    """Launch and channel-establishment failures."""


class SecureChannel:
    """An AEAD channel keyed by an attested DH exchange.

    The enclave's DH public value rides in the quote's ``report_data``, so
    a verified attestation report transitively authenticates the channel:
    whoever holds the other end is *inside* the measured enclave.
    """

    _ids = itertools.count(1)

    def __init__(self, shared_secret: bytes) -> None:
        self._key = AeadKey(hkdf(shared_secret, info=b"conclave-channel"))
        self._send_seq = 0
        self._recv_seq = 0

    def seal(self, plaintext: bytes) -> bytes:
        """Encrypt and authenticate one message (sequenced nonce)."""
        nonce = self._send_seq.to_bytes(8, "big")
        self._send_seq += 1
        return self._key.seal(nonce, plaintext)

    def open(self, ciphertext: bytes) -> bytes:
        """Verify and decrypt the peer's next message."""
        nonce = self._recv_seq.to_bytes(8, "big")
        self._recv_seq += 1
        try:
            return self._key.open(nonce, ciphertext)
        except AeadError as exc:
            raise ConclaveError("secure channel authentication failed") from exc


class Conclave:
    """One function's trusted execution environment."""

    def __init__(self, host: EnclaveHost, image: EnclaveImage,
                 backing_fs: ChrootView, rng: DeterministicRandom,
                 heap_bytes: int) -> None:
        self._rng = rng
        self.enclave: Enclave = host.launch(
            image, heap_bytes=heap_bytes + CONCLAVE_OVERHEAD_BYTES)
        # The ephemeral FS-Protect key lives (and dies) inside the enclave.
        self._fs_key = rng.randbytes(32)
        self.fs = FSProtect(backing_fs, self._fs_key)
        self._dh: Optional[DiffieHellman] = None
        self.channel: Optional[SecureChannel] = None

    @property
    def measurement(self) -> str:
        """The enclave's MRENCLAVE."""
        return self.enclave.measurement

    # -- attestation + channel establishment ------------------------------------

    def begin_channel(self) -> bytes:
        """Start a key exchange; returns the enclave's DH public value,
        which the caller should bind into a quote's report_data."""
        self._dh = DiffieHellman(self._rng.fork("channel"))
        return self._dh.public_bytes

    def quote_for_channel(self, channel_public: bytes):
        """A quote with the channel public value as report data."""
        return self.enclave.quote(report_data=channel_public)

    def complete_channel(self, peer_public: bytes) -> SecureChannel:
        """Finish the exchange (enclave side)."""
        if self._dh is None:
            raise ConclaveError("begin_channel must be called first")
        self.channel = SecureChannel(self._dh.shared_secret(peer_public))
        return self.channel

    @staticmethod
    def client_channel(rng: DeterministicRandom,
                       report: AttestationReport,
                       ias_key, expected_measurement: str
                       ) -> tuple["SecureChannel", bytes]:
        """Client side: verify the report, then key a channel against the
        DH value it vouches for.  Returns (channel, client_public)."""
        if not report.verify(ias_key, expected_measurement=expected_measurement):
            raise ConclaveError("attestation report rejected")
        dh = DiffieHellman(rng.fork("client-channel"))
        channel = SecureChannel(dh.shared_secret(report.quote.report_data))
        return channel, dh.public_bytes

    # -- runtime costs -----------------------------------------------------------

    def invoke_cost(self) -> float:
        """Simulated latency of entering the enclave once."""
        return self.enclave.invoke_cost()

    def terminate(self) -> None:
        """Destroy the enclave; the FS-Protect key is gone forever, so the
        ciphertext left on disk is permanently unreadable (the operator's
        plausible deniability)."""
        self.enclave.terminate()
        self._fs_key = b""
        self.channel = None
