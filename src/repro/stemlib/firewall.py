"""The Stem firewall (§5.3).

    "To permit safe, shared access to Stem, Bento includes as part of its
    policy enforcement layer a Stem 'firewall' to which functions must
    connect to issue all Stem invocations.  The firewall maintains state
    about the circuits each function is allowed to access, and the Stem
    routines the function may invoke."

:class:`StemFirewall` fronts one shared :class:`~repro.stemlib.controller.
Controller` for many functions.  Each function gets its own firewall
handle; a handle can only name circuits and hidden services it created,
and can only invoke routines its (manifest ∩ middlebox-policy) grant
allows.  Every invocation is recorded in an audit log.
"""

from __future__ import annotations

from typing import Optional

from repro.netsim.simulator import Actor, blocking
from repro.stemlib.controller import Controller, ControllerError
from repro.util.errors import ReproError

# The complete set of Stem routines Bento can expose; middlebox node
# policies and manifests are expressed over these names (prefixed "stem.").
STEM_ROUTINES = (
    "new_circuit",
    "close_circuit",
    "attach_stream",
    "get_network_statuses",
    "get_info",
    "create_hidden_service",
    "remove_hidden_service",
    "connect_to_hidden_service",
    "send_padding",
    "hs_wait_introduction",
    "hs_complete_rendezvous",
    "fetch",
)


class StemPolicyViolation(ReproError):
    """A function invoked a routine its grant does not allow, or touched
    a circuit it does not own."""


class StemFirewall:
    """One function's mediated view of the shared controller."""

    def __init__(self, controller: Controller, function_id: str,
                 allowed_routines: frozenset[str]) -> None:
        unknown = set(allowed_routines) - set(STEM_ROUTINES)
        if unknown:
            raise ValueError(f"unknown stem routines in grant: {sorted(unknown)}")
        self._controller = controller
        self.function_id = function_id
        self.allowed = frozenset(allowed_routines)
        self._owned_circuits: set[str] = set()
        self._owned_services: set[str] = set()
        self.audit_log: list[tuple[str, tuple]] = []

    def _check(self, routine: str, *args) -> None:
        self.audit_log.append((routine, args))
        if routine not in self.allowed:
            raise StemPolicyViolation(
                f"function {self.function_id} may not invoke stem.{routine}")

    def _check_circuit(self, circuit_id: str) -> None:
        if circuit_id not in self._owned_circuits:
            raise StemPolicyViolation(
                f"function {self.function_id} does not own circuit {circuit_id}")

    # -- mediated routines ----------------------------------------------------

    @blocking
    def new_circuit(self, thread: Actor, **kwargs) -> str:
        """Mediated :meth:`Controller.new_circuit`."""
        self._check("new_circuit")
        circuit_id = yield from self._controller.new_circuit(thread, **kwargs)
        self._owned_circuits.add(circuit_id)
        return circuit_id

    def close_circuit(self, circuit_id: str) -> None:
        """Mediated circuit teardown (ownership enforced)."""
        self._check("close_circuit", circuit_id)
        self._check_circuit(circuit_id)
        self._controller.close_circuit(circuit_id)
        self._owned_circuits.discard(circuit_id)

    @blocking
    def attach_stream(self, thread: Actor, circuit_id: str, host: str,
                      port: int):
        """Mediated stream attach (ownership enforced)."""
        self._check("attach_stream", circuit_id, host, port)
        self._check_circuit(circuit_id)
        return (yield from self._controller.attach_stream(
            thread, circuit_id, host, port))

    def get_network_statuses(self):
        """Mediated consensus listing."""
        self._check("get_network_statuses")
        return self._controller.get_network_statuses()

    def get_info(self, key: str):
        """Mediated GETINFO."""
        self._check("get_info", key)
        return self._controller.get_info(key)

    @blocking
    def create_hidden_service(self, thread: Actor, handler,
                              n_intro: int = 3, keypair=None,
                              establish: bool = True,
                              manual_introductions: bool = False):
        """Mediated hidden-service creation (ownership recorded)."""
        self._check("create_hidden_service")
        service = yield from self._controller.create_hidden_service(
            thread, handler, n_intro=n_intro, keypair=keypair,
            establish=establish, manual_introductions=manual_introductions)
        self._owned_services.add(str(service.onion_address))
        return service

    @blocking
    def hs_wait_introduction(self, thread: Actor, service,
                             timeout: Optional[float] = None) -> dict:
        """Mediated introduction wait (ownership enforced)."""
        self._check("hs_wait_introduction")
        self._check_service(str(service.onion_address))
        return (yield from self._controller.wait_introduction(
            thread, service, timeout=timeout))

    @blocking
    def hs_complete_rendezvous(self, thread: Actor, service, request: dict):
        """Mediated rendezvous completion (ownership enforced)."""
        self._check("hs_complete_rendezvous")
        self._check_service(str(service.onion_address))
        return (yield from self._controller.complete_rendezvous(
            thread, service, request))

    @blocking
    def fetch(self, thread: Actor, circuit_id: str, url: str,
              offset: Optional[int] = None, length: Optional[int] = None,
              timeout: float = 600.0) -> dict:
        """Mediated HTTP fetch through an owned circuit."""
        self._check("fetch", circuit_id, url)
        self._check_circuit(circuit_id)
        return (yield from self._controller.fetch(
            thread, circuit_id, url, offset=offset, length=length,
            timeout=timeout))

    def _check_service(self, onion_address: str) -> None:
        if onion_address not in self._owned_services:
            raise StemPolicyViolation(
                f"function {self.function_id} does not own {onion_address}")

    def remove_hidden_service(self, onion_address: str) -> None:
        """Mediated hidden-service removal (ownership enforced)."""
        self._check("remove_hidden_service", onion_address)
        if onion_address not in self._owned_services:
            raise StemPolicyViolation(
                f"function {self.function_id} does not own {onion_address}")
        self._controller.remove_hidden_service(onion_address)
        self._owned_services.discard(onion_address)

    @blocking
    def connect_to_hidden_service(self, thread: Actor, onion_address: str):
        """Mediated client-side rendezvous."""
        self._check("connect_to_hidden_service", onion_address)
        return (yield from self._controller.connect_to_hidden_service(
            thread, onion_address))

    def send_padding(self, circuit_id: str, hop_index: Optional[int] = None,
                     payload: bytes = b"") -> None:
        """Mediated RELAY_DROP injection (ownership enforced)."""
        self._check("send_padding", circuit_id)
        self._check_circuit(circuit_id)
        self._controller.send_padding(circuit_id, hop_index=hop_index,
                                      payload=payload)

    # -- cleanup (server side, not function-callable) -----------------------------

    def release_all(self) -> None:
        """Tear down everything this function created (on shutdown)."""
        for circuit_id in list(self._owned_circuits):
            try:
                self._controller.close_circuit(circuit_id)
            except ControllerError:
                pass
        self._owned_circuits.clear()
        for onion in list(self._owned_services):
            try:
                self._controller.remove_hidden_service(onion)
            except ControllerError:
                pass
        self._owned_services.clear()
