"""The controller: stem's surface area, bound to :mod:`repro.tor`.

Mirrors the subset of ``stem.control.Controller`` that the paper's
functions rely on: circuit creation/extension/teardown, stream attachment,
network status queries, and hidden-service management.  Circuits are
referred to by controller-assigned string ids, like stem's ``circuit_id``.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.netsim.simulator import Actor, blocking
from repro.tor.circuit import Circuit
from repro.tor.client import TorClient
from repro.tor.descriptor import RelayDescriptor
from repro.tor.hidden_service import HiddenService, StreamHandler
from repro.tor.stream import TorStream
from repro.util.errors import ReproError


class ControllerError(ReproError):
    """Raised for unknown circuit ids and failed controller operations."""


class Controller:
    """Programmatic control of one Tor client instance."""

    def __init__(self, tor_client: TorClient) -> None:
        self._client = tor_client
        self._circuits: dict[str, Circuit] = {}
        self._services: dict[str, HiddenService] = {}
        self._ids = itertools.count(1)

    # -- circuits -----------------------------------------------------------

    @blocking
    def new_circuit(self, thread: Actor,
                    path: Optional[list[RelayDescriptor]] = None,
                    length: int = 3,
                    exit_to: Optional[tuple[str, int]] = None,
                    final_hop: Optional[RelayDescriptor] = None) -> str:
        """Build a circuit; returns its controller id."""
        circuit = yield from self._client.build_circuit(
            thread, path=path, length=length, exit_to=exit_to,
            final_hop=final_hop)
        circuit_id = str(next(self._ids))
        self._circuits[circuit_id] = circuit
        return circuit_id

    def get_circuit(self, circuit_id: str) -> Circuit:
        """The circuit object behind an id."""
        try:
            return self._circuits[circuit_id]
        except KeyError:
            raise ControllerError(f"unknown circuit: {circuit_id}") from None

    def list_circuits(self) -> list[str]:
        """Ids of all live circuits."""
        return [cid for cid, circ in self._circuits.items() if not circ.destroyed]

    def close_circuit(self, circuit_id: str) -> None:
        """Destroy a circuit."""
        self.get_circuit(circuit_id).close()
        self._circuits.pop(circuit_id, None)

    @blocking
    def attach_stream(self, thread: Actor, circuit_id: str, host: str,
                      port: int) -> TorStream:
        """Open a stream on an existing circuit (stem's ATTACHSTREAM)."""
        return (yield from self.get_circuit(circuit_id).open_stream(
            thread, host, port))

    @blocking
    def fetch(self, thread: Actor, circuit_id: str, url: str,
              offset: Optional[int] = None, length: Optional[int] = None,
              timeout: float = 600.0) -> dict:
        """One HTTP(S) GET through an existing circuit.

        Returns ``{"status", "body", "total", "elapsed"}``.  The multipath
        function uses ranged fetches over several circuits at once.
        """
        from repro.netsim.bytestream import FramedStream
        from repro.netsim.http import fetch as http_fetch, parse_url

        parsed = parse_url(url)
        stream = yield from self.attach_stream(thread, circuit_id,
                                               parsed.host, parsed.port)
        framed = FramedStream(stream)
        try:
            response = yield from http_fetch(thread, framed, parsed.path,
                                             url=url, timeout=timeout,
                                             offset=offset, length=length)
        finally:
            framed.close()
        return {"status": response.status, "body": response.body,
                "total": response.total, "elapsed": response.elapsed}

    # -- directory ------------------------------------------------------------

    def get_network_statuses(self) -> list[RelayDescriptor]:
        """All relays in the verified consensus."""
        return list(self._client.consensus().routers)

    def get_info(self, key: str):
        """A few of stem's GETINFO keys."""
        if key == "address":
            return self._client.node.address
        if key == "circuit-status":
            return self.list_circuits()
        if key == "version":
            return "repro-tor-1.0"
        raise ControllerError(f"unsupported GETINFO key: {key}")

    # -- hidden services ----------------------------------------------------------

    @blocking
    def create_hidden_service(self, thread: Actor, handler: StreamHandler,
                              n_intro: int = 3, keypair=None,
                              establish: bool = True,
                              manual_introductions: bool = False) -> HiddenService:
        """Launch a hidden service (stem's create_ephemeral_hidden_service).

        ``establish=False`` creates a *detached* endpoint that never
        publishes a descriptor — a load-balancer replica that only answers
        rendezvous requests handed to it.  ``manual_introductions`` queues
        INTRODUCE2s for :meth:`wait_introduction` instead of answering
        them inline.
        """
        service = HiddenService(self._client, handler, keypair=keypair)
        service.manual_introductions = manual_introductions
        if establish:
            yield from service.establish(thread, n_intro=n_intro)
        self._services[str(service.onion_address)] = service
        return service

    @blocking
    def wait_introduction(self, thread: Actor, service: HiddenService,
                          timeout: Optional[float] = None) -> dict:
        """Next queued introduction for a manual-mode service."""
        return (yield from service.wait_introduction(thread, timeout=timeout))

    @blocking
    def complete_rendezvous(self, thread: Actor, service: HiddenService,
                            request: dict):
        """Answer one introduction: build the rendezvous circuit (§8.2's
        delegation seam — a replica can do this with copied key material)."""
        return (yield from service.complete_rendezvous(thread, request))

    def remove_hidden_service(self, onion_address: str) -> None:
        """Shut a hidden service down."""
        service = self._services.pop(onion_address, None)
        if service is None:
            raise ControllerError(f"unknown hidden service: {onion_address}")
        service.shut_down()

    @blocking
    def connect_to_hidden_service(self, thread: Actor,
                                  onion_address: str) -> Circuit:
        """Client-side rendezvous to someone else's hidden service."""
        return (yield from self._client.connect_to_hidden_service(
            thread, onion_address))

    # -- padding / raw cells ----------------------------------------------------------

    def send_padding(self, circuit_id: str, hop_index: Optional[int] = None,
                     payload: bytes = b"") -> None:
        """Inject one RELAY_DROP cell (the Cover function's primitive)."""
        self._client.send_drop(self.get_circuit(circuit_id), hop_index=hop_index,
                               payload=payload)
