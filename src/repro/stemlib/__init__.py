"""A stem-like Tor controller plus the Bento Stem "firewall".

The paper's functions use the stem library to programmatically create
circuits and launch hidden services; Bento mediates all such access through
a policy-enforcing firewall (§5.3).  :class:`~repro.stemlib.controller.Controller`
mirrors the slice of stem's surface the paper's functions need, bound to
this repository's Tor substrate; :class:`~repro.stemlib.firewall.StemFirewall`
is the enforcement layer functions actually talk to.
"""

from repro.stemlib.controller import Controller, ControllerError
from repro.stemlib.firewall import StemFirewall, StemPolicyViolation

__all__ = [
    "Controller",
    "ControllerError",
    "StemFirewall",
    "StemPolicyViolation",
]
