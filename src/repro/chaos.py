"""Chaos soak: seeded fault injection against a full Bento deployment.

This is the robustness acceptance scenario: a Tor network with Bento
boxes runs a Shard deployment (k-of-N erasure-coded storage) and a
LoadBalancer service while a :class:`~repro.netsim.faults.FaultPlane`
crashes boxes, severs links, and spikes latencies on a seeded schedule.
Every layer must recover:

* visitors retry their downloads (:meth:`BentoClient.retrying`) and all
  of them must eventually get bit-identical content;
* the LoadBalancer must notice a replica whose box crashed and respawn
  it elsewhere (``replicas_respawned``);
* the Shard owner must reconstruct the original file from the surviving
  placements after two placement boxes die permanently;
* the whole run must be deterministic: the same seed yields the same
  fault log, the same counters, and the same result dict, run after run.

``run_chaos_soak`` returns a plain-data summary dict that the test suite
compares across runs and the ``chaos-soak`` CLI scenario prints.
"""

from __future__ import annotations

import functools
import json
from collections import Counter

from repro.core import messages
from repro.core.client import RETRYABLE_ERRORS, BentoClient
from repro.core.server import BentoServer
from repro.enclave.attestation import IntelAttestationService
from repro.functions.loadbalancer import LoadBalancerFunction
from repro.functions.shard import ShardFunction
from repro.netsim.faults import FaultPlane
from repro.netsim.simulator import Actor, Sleep, SimTimeoutError
from repro.obs.metrics import REGISTRY as _metrics
from repro.obs.span import EventLog, TRACER as _obs
from repro.perf.counters import counters as _perf
from repro.tor.testnet import TorTestNetwork

#: How long the LoadBalancer serves; faults all land well before this.
LB_DURATION_S = 420.0
#: Hard wall for the whole soak (simulated seconds).
SOAK_DEADLINE_S = 4000.0


def run_chaos_soak(seed: int = 2021, n_relays: int = 14,
                   n_visitors: int = 6, verbose: bool = False,
                   trace_log: EventLog | None = None,
                   recovery_mode: str = "cold") -> dict:
    """Run the full chaos scenario; returns a deterministic summary dict.

    The dict contains only plain data (ints, strings, sorted structures)
    so two runs with the same ``seed`` can be compared with ``==``.

    Pass ``trace_log`` to record the whole soak as structured spans and
    events: the log is attached to the process tracer for the duration of
    the run and detached afterwards (restoring whatever was attached
    before).  Same seed + fresh log ⇒ byte-identical exports.

    ``recovery_mode`` selects how losses recover (summarized per mode in
    the result's ``recovery`` key):

    * ``"cold"`` (default) — today's respawn-from-scratch, byte-identical
      to the pre-migration-plane soak;
    * ``"standby"`` — the LoadBalancer keeps one warm standby replica and
      promotes it on loss instead of respawning;
    * ``"migrate"`` — adds a stateful kvstore tenant whose box drains it
      to another box mid-run (servers get the migration plane);
    * ``"tenant-cold"`` — the same tenant, but its box crashes and the
      owner redeploys from scratch (the cold baseline for ``migrate``).
    """
    _perf.reset()
    _metrics.reset()
    previous = _obs.log
    if trace_log is not None:
        _obs.attach(trace_log)
    try:
        return _run_soak(seed, n_relays, n_visitors, verbose, recovery_mode)
    finally:
        if trace_log is not None:
            _obs.log = previous


def _percentile(samples: list, q: float):
    """Nearest-rank percentile over simulated-seconds samples."""
    if not samples:
        return None
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return round(ordered[index], 3)


def _run_soak(seed: int, n_relays: int, n_visitors: int,
              verbose: bool, recovery_mode: str = "cold") -> dict:
    if recovery_mode not in ("cold", "standby", "migrate", "tenant-cold"):
        raise ValueError(f"unknown recovery_mode: {recovery_mode!r}")
    net = TorTestNetwork(n_relays=n_relays, seed=seed, bento_fraction=0.5,
                         fast_crypto=True)
    ias = IntelAttestationService(net.sim.rng.fork("ias"))
    net.ias = ias
    migrate_cfg = None
    if recovery_mode == "migrate":
        from repro.migrate import MigrationConfig
        migrate_cfg = MigrationConfig(quiesce_poll_s=0.5)
    net.servers = [BentoServer(r, net.authority, ias=ias, orphan_grace_s=60.0,
                               migrate=migrate_cfg)
                   for r in net.bento_boxes()]
    plane = FaultPlane(net.network)
    fp_to_node = {r.fingerprint: r.node.name for r in net.relays}
    content = bytes(net.sim.rng.fork("lb-content").randbytes(1_000_000))
    payload = bytes(net.sim.rng.fork("shard-file").randbytes(60_000))

    shared: dict = {"attempted": 0, "recovered": 0, "visitors_done": 0,
                    "announced": [], "crashed": set()}

    def say(text: str) -> None:
        if verbose:
            print(f"[t={net.sim.now:8.1f}] {text}")

    # -- the Shard owner: scatter early, gather after the storm ------------

    def shard_owner(thread: Actor):
        client = BentoClient(net.create_client("shard-owner"), ias=ias)
        session = yield from client.connect(thread, client.pick_box())
        yield from session.request_image(thread, "python")
        yield from session.load_function(thread, ShardFunction.SOURCE,
                                         ShardFunction.manifest())
        metadata = yield from ShardFunction.scatter(thread, session, payload,
                                                    n=5, k=3, name="soak")
        session.close()
        shared["metadata"] = metadata
        say("scatter complete: " + ", ".join(
            p["box_nickname"] for p in metadata["placements"]))
        # Wait out the storm: the LB finishing is the last scheduled act.
        while "lb_stats" not in shared or \
                shared["visitors_done"] < n_visitors:
            yield Sleep(5.0)
        gatherer = BentoClient(net.create_client("gatherer"), ias=ias)
        restored = yield from ShardFunction.gather(thread, gatherer, metadata,
                                                   timeout=90.0)
        shared["shard_ok"] = restored == payload
        say(f"gather complete, bit-identical={shared['shard_ok']}")

    # -- the LoadBalancer operator -----------------------------------------

    def lb_operator(thread: Actor):
        while "metadata" not in shared:
            yield Sleep(1.0)
        placed = {p["box_fp"] for p in shared["metadata"]["placements"]}
        client = BentoClient(net.create_client("lb-operator"), ias=ias)
        candidates = [b for b in client.discover_boxes()
                      if b.identity_fp not in placed]
        box = client.rng.choice(candidates) if candidates else \
            client.pick_box()
        shared["lb_node"] = fp_to_node[box.identity_fp]
        session = yield from client.connect(thread, box)
        yield from session.request_image(thread, "python")
        yield from session.load_function(
            thread, LoadBalancerFunction.SOURCE,
            LoadBalancerFunction.manifest(image="python"))
        onion = yield from LoadBalancerFunction.start(
            thread, session, content, high_water=1, low_water=1,
            max_replicas=2, duration_s=LB_DURATION_S, poll_interval=2.0,
            replica_image="python", announce=True,
            standbys=1 if recovery_mode == "standby" else 0)
        shared["onion"] = onion
        say(f"loadbalancer serving {onion} from {shared['lb_node']}")
        stats = None
        while stats is None:
            for index, queued in enumerate(session._pending):
                if queued["type"] == messages.DONE:
                    stats = session._pending.pop(index)["result"]
                    break
            if stats is not None:
                break
            try:
                out = yield from session.next_output(thread, timeout=20.0)
            except SimTimeoutError:
                continue
            except RETRYABLE_ERRORS:
                # Transport died mid-soak: reconnect and reattach.
                for attempt in range(5):
                    yield Sleep(2.0 * (attempt + 1))
                    try:
                        yield from session.reconnect(thread)
                        break
                    except RETRYABLE_ERRORS:
                        continue
                else:
                    raise
                say("operator session reattached")
                continue
            try:
                note = json.loads(out.decode("utf-8"))
            except ValueError:
                continue
            shared["announced"].append(note)
            say(f"announcement: {note}")
        # The events list is authoritative (announcements can be lost in
        # a reconnect window): count respawns from it.
        respawns = sum(1 for e in stats["events"] if e[1] == "respawn")
        _perf.replicas_respawned += respawns
        _metrics.counter("lb_respawns").value += respawns
        promotions = sum(1 for e in stats["events"]
                         if e[1] == "standby-promoted")
        if promotions:
            # The sandboxed balancer cannot touch host counters; surface
            # its standby promotions the same way as its respawns.
            _perf.standby_promotions += promotions
            _metrics.counter("standby_promotions").value += promotions
        log = _obs.log
        if log is not None:
            # The sandboxed balancer cannot reach the tracer; surface its
            # respawns here, stamped with the event's own simulated time.
            for e in stats["events"]:
                if e[1] == "respawn":
                    log.instant("functions.lb_respawn", float(e[0]),
                                track="loadbalancer", replicas=e[2])
        shared["lb_stats"] = stats
        session.close()

    # -- visitors: the client requests that must all recover ---------------

    def visitor(thread: Actor, index: int):
        while "onion" not in shared:
            yield Sleep(1.0)
        shared["attempted"] += 1
        client = BentoClient(net.create_client(f"chaos-visitor{index}"),
                             ias=ias)

        def download():
            body, _elapsed = yield from LoadBalancerFunction.download(
                thread, client.tor, shared["onion"], timeout=60.0)
            if body != content:
                raise ConnectionError("content mismatch")
            return True

        try:
            yield from client.retrying(thread, download, attempts=6,
                                       backoff_s=2.0)
            shared["recovered"] += 1
            say(f"visitor{index} recovered its download")
        except RETRYABLE_ERRORS as exc:
            say(f"visitor{index} gave up: {exc}")
        finally:
            shared["visitors_done"] += 1

    # -- the stateful tenant (migrate / tenant-cold modes only) ------------

    tenant_enabled = recovery_mode in ("migrate", "tenant-cold")
    tenant_log: list = []          # (sim_time, counter value) per good op
    tenant_state = {"redeploys": 0}

    def tenant_owner(thread: Actor):
        from repro.functions.kvstore import KvStoreFunction

        # The tenant is an operator-managed probe (like the LB pushing to
        # its replicas): direct sessions keep the recovery measurement
        # clean of background Tor-circuit noise.
        client = BentoClient(net.create_client("tenant"), ias=ias)
        # Keep off the shard placements and the LB box: the tenant
        # director kills (or drains) the tenant's box, and that must not
        # double as an attack on the other workloads' quorum.
        while "metadata" not in shared or "lb_node" not in shared:
            yield Sleep(1.0)
        risky = {p["box_fp"] for p in shared["metadata"]["placements"]}
        risky |= {fp for fp, node in fp_to_node.items()
                  if node == shared["lb_node"]}
        box = client.pick_box(exclude=tuple(sorted(risky)))
        shared["tenant_node"] = fp_to_node[box.identity_fp]
        session = yield from client.connect_direct(thread, box)
        yield from session.request_image(thread, "python")
        yield from session.load_function(thread, KvStoreFunction.SOURCE,
                                         KvStoreFunction.manifest())
        KvStoreFunction.start(session)
        holder = {"session": session}

        def one_op():
            return KvStoreFunction.op(
                thread, holder["session"],
                {"op": "incr", "key": "hits"}, timeout=15.0)

        target_ops = 40
        while (len(tenant_log) < target_ops
               and net.sim.now < SOAK_DEADLINE_S - 600.0):
            try:
                reply = yield from client.retrying(
                    thread, one_op, attempts=3, backoff_s=2.0,
                    session=holder["session"])
                tenant_log.append((net.sim.now, int(reply["value"])))
                # Track where the instance lives now: a drain retargets
                # the session, and the director must never crash the
                # tenant's box itself (its faults are the tenant
                # director's job).
                moved_to = fp_to_node.get(holder["session"].box.identity_fp)
                if moved_to:
                    shared["tenant_node"] = moved_to
            except RETRYABLE_ERRORS:
                # Cold recovery: the instance (and its state) is gone for
                # good — redeploy from scratch on a surviving box, then
                # retry the op immediately so the log's gap measures the
                # real outage.
                crashed_fps = {fp for fp, node in fp_to_node.items()
                               if node in shared["crashed"]}
                say("tenant redeploying from scratch")
                try:
                    box2 = client.pick_box(exclude=tuple(sorted(crashed_fps)))
                    fresh = yield from client.connect_direct(thread, box2)
                    yield from fresh.request_image(thread, "python")
                    yield from fresh.load_function(
                        thread, KvStoreFunction.SOURCE,
                        KvStoreFunction.manifest())
                    KvStoreFunction.start(fresh)
                    holder["session"] = fresh
                    shared["tenant_node"] = fp_to_node[box2.identity_fp]
                    tenant_state["redeploys"] += 1
                except RETRYABLE_ERRORS:
                    yield Sleep(5.0)    # redeploy itself failed; try again
                continue
            yield Sleep(5.0)
        shared["tenant_done"] = True

    def tenant_director(thread: Actor):
        # Let the tenant accumulate some state first, then hit its box.
        while len(tenant_log) < 4:
            yield Sleep(2.0)
        node = shared.get("tenant_node")
        if node is None:
            return
        if recovery_mode == "migrate":
            server = next(s for s in net.servers if s.node.name == node)
            instance = next(
                (i for i in server._by_invocation.values()
                 if i.manifest is not None and i.manifest.name == "kvstore"),
                None)
            if instance is not None and server.migrate is not None:
                say(f"draining tenant off {node}")
                server.migrate.request_drain(instance)
        else:
            say(f"crashing tenant box {node} (permanent)")
            plane.crash_node(node)
            shared["crashed"].add(node)

    # -- the director: where the faults come from --------------------------

    def live_replica_nodes() -> list[str]:
        nodes = []
        for server in net.servers:
            if not server.node.alive:
                continue
            for instance in server._by_invocation.values():
                if (instance.manifest is not None
                        and instance.manifest.name == "lb-replica"
                        and instance.runtime is not None
                        and instance.runtime.running):
                    nodes.append(server.node.name)
        return nodes

    def director(thread: Actor):
        while "metadata" not in shared or "onion" not in shared:
            yield Sleep(1.0)
        placement_nodes = [fp_to_node[p["box_fp"]]
                           for p in shared["metadata"]["placements"]]
        # Background noise: one plain-relay crash (it restarts), plus a
        # seeded batch of link cuts and latency spikes.
        plain = [r.node.name for r in net.relays if r.bento_port is None]
        noisy = plane.rng.choice(plain)
        plane.crash_node(noisy, down_for_s=60.0)
        say(f"crashed middle relay {noisy} (restarts in 60s)")
        plane.schedule_random(
            node_names=[r.node.name for r in net.relays],
            start_s=net.sim.now + 10.0, end_s=net.sim.now + 150.0,
            n_link_cuts=3, n_latency_spikes=4, mean_downtime_s=30.0,
            spike_extra_s=0.2)
        # Wait for the LB to scale up, then kill a replica's box for good.
        deadline = net.sim.now + 200.0
        while not live_replica_nodes() and net.sim.now < deadline:
            yield Sleep(2.0)
        victims = [n for n in live_replica_nodes()
                   if n != shared.get("tenant_node")]
        if victims:
            victim = victims[0]
            plane.crash_node(victim)
            shared["crashed"].add(victim)
            say(f"crashed replica box {victim} (permanent)")
            # Wait for the respawn to land somewhere else.
            deadline = net.sim.now + 120.0
            while net.sim.now < deadline and not [
                    n for n in live_replica_nodes()
                    if n not in shared["crashed"]]:
                yield Sleep(2.0)
            say("replicas now on " + ",".join(live_replica_nodes()))
        # Finally, kill shard placement boxes — at most n-k of them, and
        # never the LB box or a box currently hosting a replica.
        for target in placement_nodes:
            if len(shared["crashed"] & set(placement_nodes)) >= 2:
                break
            if target in shared["crashed"] or target == shared["lb_node"] \
                    or target == shared.get("tenant_node") \
                    or target in live_replica_nodes():
                continue
            plane.crash_node(target)
            shared["crashed"].add(target)
            say(f"crashed shard placement box {target} (permanent)")

    shard_thread = net.sim.spawn(shard_owner, name="shard-owner")
    net.sim.spawn(lb_operator, name="lb-operator")
    tenant_thread = None
    if tenant_enabled:
        tenant_thread = net.sim.spawn(tenant_owner, name="tenant",
                                      delay=15.0)
        net.sim.spawn(tenant_director, name="tenant-director", delay=40.0)
    for index in range(n_visitors):
        # Two waves: a tight burst (pushes the LB past high_water so it
        # scales up) and a trailing wave that keeps load on the service
        # while the director is crashing boxes.
        if index < (n_visitors + 1) // 2:
            delay = 20.0 + 3.0 * index
        else:
            delay = 110.0 + 12.0 * index
        net.sim.spawn(functools.partial(visitor, index=index),
                      name=f"visitor{index}", delay=delay)
    net.sim.spawn(director, name="director", delay=30.0)

    net.sim.run_until_done(shard_thread, until=SOAK_DEADLINE_S)
    if tenant_thread is not None:
        net.sim.run_until_done(tenant_thread, until=SOAK_DEADLINE_S)
    net.sim.check_failures()

    stats = shared["lb_stats"]

    # Recovery-time samples per mode.  LoadBalancer losses pair with the
    # next recovery event in its (authoritative) events list; the tenant
    # contributes its longest op-to-op gap — the client-visible pause its
    # recovery mode produced.
    recovery_samples: dict[str, list] = {}
    pending_lost: list = []
    for event_t, kind, _detail in stats["events"]:
        if kind == "replica-lost":
            pending_lost.append(float(event_t))
        elif kind in ("respawn", "standby-promoted") and pending_lost:
            mode = "cold" if kind == "respawn" else "standby"
            recovery_samples.setdefault(mode, []).append(
                float(event_t) - pending_lost.pop(0))
    tenant_summary = None
    if tenant_enabled and len(tenant_log) >= 2:
        gaps = [t2 - t1 for (t1, _v1), (t2, _v2)
                in zip(tenant_log, tenant_log[1:])]
        values = [v for _t, v in tenant_log]
        tenant_summary = {
            "mode": recovery_mode,
            "ops_ok": len(tenant_log),
            "recovery_s": round(max(gaps), 3),
            "state_preserved": all(b > a for a, b in zip(values, values[1:])),
            "redeploys": tenant_state["redeploys"],
        }
        key = "migrate" if recovery_mode == "migrate" else "cold-redeploy"
        recovery_samples.setdefault(key, []).append(max(gaps))
    result = {
        "seed": seed,
        "recovery_mode": recovery_mode,
        "n_relays": n_relays,
        "requests_attempted": shared["attempted"],
        "requests_recovered": shared["recovered"],
        "shard_ok": bool(shared.get("shard_ok")),
        "faults_injected": _perf.faults_injected,
        "fault_log": dict(sorted(Counter(
            kind for _t, kind, _detail in plane.log).items())),
        "lb_events": dict(sorted(Counter(
            e[1] for e in stats["events"]).items())),
        "replicas_lost": stats["replicas_lost"],
        "announcements": len(shared["announced"]),
        "counters": {
            "node_crashes": _perf.node_crashes,
            "node_restarts": _perf.node_restarts,
            "links_cut": _perf.links_cut,
            "links_healed": _perf.links_healed,
            "latency_spikes": _perf.latency_spikes,
            "conns_torn_down": _perf.conns_torn_down,
            "retries": _perf.retries,
            "circuits_rebuilt": _perf.circuits_rebuilt,
            "session_reconnects": _perf.session_reconnects,
            "replicas_respawned": _perf.replicas_respawned,
            "orphans_reaped": _perf.orphans_reaped,
            "checkpoints_taken": _perf.checkpoints_taken,
            "migrations_started": _perf.migrations_started,
            "migrations_completed": _perf.migrations_completed,
            "migrations_failed": _perf.migrations_failed,
            "standby_promotions": _perf.standby_promotions,
        },
        "recovery": {
            mode: {"count": len(samples),
                   "p50_s": _percentile(samples, 0.5),
                   "p99_s": _percentile(samples, 0.99)}
            for mode, samples in sorted(recovery_samples.items())},
        "tenant": tenant_summary,
        "sim_time": round(net.sim.now, 3),
    }
    return result


def check_soak(result: dict) -> list[str]:
    """The acceptance predicates; returns the list of violations (empty
    when the soak passed)."""
    problems = []
    if result["faults_injected"] < 10:
        problems.append(
            f"only {result['faults_injected']} faults injected (<10)")
    if result["requests_recovered"] != result["requests_attempted"]:
        problems.append(
            f"{result['requests_recovered']}/{result['requests_attempted']}"
            " client requests recovered")
    if not result["shard_ok"]:
        problems.append("shard gather was not bit-identical")
    if result["counters"]["replicas_respawned"] < 1:
        problems.append("no LoadBalancer replica was respawned")
    return problems
