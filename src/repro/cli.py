"""Command-line interface: run the demo scenarios without writing code.

    python -m repro <scenario> [--seed N]
    python -m repro list
"""

from __future__ import annotations

import argparse
import sys

from repro.version import __version__


def _scenario_quickstart(seed: int) -> None:
    """Deploy one attested hello-world function on a Bento box and invoke
    it over Tor — the paper's core loop, end to end."""
    from repro.core import BentoClient, BentoServer, FunctionManifest
    from repro.enclave.attestation import IntelAttestationService
    from repro.tor import TorTestNetwork

    net = TorTestNetwork(n_relays=9, seed=seed, bento_fraction=0.34)
    ias = IntelAttestationService(net.sim.rng.fork("ias"))
    for relay in net.bento_boxes():
        BentoServer(relay, net.authority, ias=ias)
    client = BentoClient(net.create_client("you"), ias=ias)
    code = ("def hello(who):\n"
            "    yield from api.send(('hello, ' + who).encode())\n"
            "    return len(who)\n")

    def flow(thread):
        """The scripted Bento session this scenario runs."""
        session = yield from client.connect(thread, client.pick_box())
        yield from session.request_image(thread, "python-op-sgx")
        yield from session.load_function(thread, code, FunctionManifest.create(
            "hello", "hello", {"send"}, image="python-op-sgx"))
        result = yield from session.invoke(thread, ["bento"])
        output = yield from session.next_output(thread)
        print(f"function said: {output.decode()!r} "
              f"(returned {result})")
        yield from session.shutdown(thread)
        session.close()

    net.sim.run_until_done(net.sim.spawn(flow))
    print(f"done at simulated t={net.sim.now:.2f}s")


def _scenario_fingerprint(seed: int) -> None:
    """Measure website-fingerprinting attack accuracy with and without
    the Browser defense (§9.2's traffic-analysis evaluation)."""
    from repro.fingerprint import FingerprintLab, KnnClassifier, evaluate_split

    lab = FingerprintLab(n_sites=10, n_relays=10, seed=seed)
    for label, defense, padding in [("unmodified tor", "none", 0),
                                    ("browser 0MB", "browser", 0),
                                    ("browser 2MB", "browser", 2_000_000)]:
        samples = lab.collect(defense, visits_per_site=4, padding=padding)
        X, y = lab.dataset(samples)
        accuracy = evaluate_split(KnnClassifier(k=3), X, y)
        print(f"{label:16s} attack accuracy {accuracy * 100:5.1f}%")


def _scenario_perf_report(seed: int) -> None:
    """Run the quickstart scenario with the perf harness on, then report.

    Set ``REPRO_PROFILE=1`` to additionally capture a cProfile of the
    event loop (printed after the counter table).
    """
    from repro.perf import (
        active_profile,
        counters,
        profile_to_text,
        render_report,
        timed_section,
    )
    from repro.perf.timing import reset_sections

    counters.reset()
    reset_sections()
    with timed_section("quickstart"):
        _scenario_quickstart(seed)
    print()
    print(render_report())
    if active_profile() is not None:
        print()
        print(profile_to_text())


def _scenario_chaos_soak(seed: int) -> None:
    """Run the deterministic fault-injection soak and check its invariants.

    Exits nonzero if any acceptance predicate fails (insufficient faults,
    an unrecovered client request, a corrupted Shard reconstruction, or a
    LoadBalancer replica that was never respawned).
    """
    from repro.chaos import check_soak, run_chaos_soak

    result = run_chaos_soak(seed=seed, verbose=True)
    print(f"chaos soak (seed={result['seed']}, {result['n_relays']} relays) "
          f"finished at simulated t={result['sim_time']:.1f}s")
    print(f"  faults injected:   {result['faults_injected']} "
          f"{dict(result['fault_log'])}")
    print(f"  client requests:   {result['requests_recovered']}/"
          f"{result['requests_attempted']} recovered")
    print(f"  shard retrieval:   "
          f"{'bit-identical' if result['shard_ok'] else 'CORRUPTED'}")
    print(f"  replicas lost:     {result['replicas_lost']}")
    print(f"  lb events:         {dict(result['lb_events'])}")
    print("  counters:")
    for name, value in sorted(result["counters"].items()):
        print(f"    {name:22s} {value}")
    problems = check_soak(result)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        raise SystemExit(1)
    print("all soak invariants hold")


def _scenario_trace_report(seed: int, out: str = "trace-report") -> None:
    """Run the quickstart flow with the observability plane attached and
    write the trace artifacts: a Perfetto-loadable Chrome trace, the raw
    span/event JSONL, and a plain-text metrics snapshot.

    All timestamps are simulated seconds — the same seed always produces
    byte-identical artifacts.
    """
    from repro.obs import REGISTRY, TRACER, write_trace_report
    from repro.perf.counters import counters
    from repro.perf.timing import reset_sections

    counters.reset()
    reset_sections()
    REGISTRY.reset()
    log = TRACER.attach()
    try:
        _scenario_quickstart(seed)
    finally:
        TRACER.detach()
    paths = write_trace_report(out, log)
    print()
    print(f"trace report: {len(log.spans)} spans, {len(log.events)} events")
    for artifact, path in sorted(paths.items()):
        print(f"  {artifact:12s} {path}")
    print("load trace.json at ui.perfetto.dev (or chrome://tracing)")


def _scenario_scale_report(seed: int, workers: int = 1) -> None:
    """Run one in-process N=100 session sweep from the scale benchmark
    and print wall-clock, event-throughput, and cache-hit-rate numbers.

    With ``--workers K`` (K > 1) it instead runs the sharded-kernel
    mesh quick look: the ``MeshScenario`` at N=10k sessions on K shard
    workers and on one, printing the parity check, epoch/cross-event
    counts, and speedup.

    The full subprocess sweep (N in {10, 100, 1000}, with peak-RSS
    attribution per N and the frozen pre-optimization baseline) lives in
    ``benchmarks/bench_scale.py``; this scenario is the quick look.
    """
    import importlib.util
    from pathlib import Path

    bench_path = (Path(__file__).resolve().parent.parent.parent
                  / "benchmarks" / "bench_scale.py")
    if not bench_path.exists():
        print("benchmarks/bench_scale.py not found (installed package?); "
              "run from a source checkout")
        raise SystemExit(1)
    spec = importlib.util.spec_from_file_location("bench_scale", bench_path)
    bench = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(bench)

    if workers > 1:
        n_sessions = bench.PARALLEL_SMOKE_N
        base = bench.run_mesh(n_sessions, 1, seed)
        sharded = bench.run_mesh(n_sessions, workers, seed)
        parity = sharded["trace_sha256"] == base["trace_sha256"]
        print(f"scale report (seed={seed}): mesh N={n_sessions} "
              f"on {workers} shard workers "
              f"({'fork' if sharded['processes'] else 'inline'} driver)")
        print(f"  lookahead:         {sharded['lookahead_s'] * 1000:.1f}ms  "
              f"epochs={sharded['epochs_completed']}  "
              f"cross={sharded['cross_shard_events']}")
        print(f"  wall:              {sharded['wall_s']:.2f}s vs "
              f"{base['wall_s']:.2f}s single-process "
              f"({base['wall_s'] / sharded['wall_s']:.2f}x)")
        print(f"  critical path:     {sharded['critical_path_s']:.2f}s "
              f"(modeled "
              f"{base['critical_path_s'] / sharded['critical_path_s']:.2f}x "
              f"with a core per worker)")
        print(f"  peak rss/worker:   "
              f"{max(sharded['peak_rss_per_worker_kb'])}kB")
        print(f"  merged trace:      "
              f"{'byte-identical to single-process' if parity else 'MISMATCH'}")
        if not parity:
            raise SystemExit(1)
        return

    result = bench.run_scale(100, seed=seed)
    print(f"scale report (seed={seed}): {result['n_sessions']} sessions, "
          f"{result['n_clients']} clients")
    print(f"  wall:              {result['wall_s']:.3f}s "
          f"(simulated t={result['sim_now']:.1f}s)")
    print(f"  events:            {result['events_processed']} "
          f"({result['events_per_s']:.0f}/s)")
    print(f"  cells crypted:     {result['cells_crypted']}")
    print(f"  timers cancelled:  {result['timers_cancelled']}")
    print(f"  bytes zero-copied: {result['bytes_zero_copied']}")
    for layer, stats in sorted(result["cache_hit_rates"].items()):
        print(f"  cache[{layer}]: {stats['hits']}/"
              f"{stats['hits'] + stats['misses']} hit rate "
              f"{stats['rate'] * 100:.1f}%")


def _scenario_qos_report(seed: int) -> None:
    """Run one in-process 4x-overload cell from the qos benchmark, plane
    off then on, and print the goodput/latency/shedding contrast.

    The full subprocess sweep (0.5x-4x offered load, with peak-RSS
    attribution per cell) lives in ``benchmarks/bench_qos.py``; this
    scenario is the quick look.
    """
    import importlib.util
    from pathlib import Path

    bench_path = (Path(__file__).resolve().parent.parent.parent
                  / "benchmarks" / "bench_qos.py")
    if not bench_path.exists():
        print("benchmarks/bench_qos.py not found (installed package?); "
              "run from a source checkout")
        raise SystemExit(1)
    spec = importlib.util.spec_from_file_location("bench_qos", bench_path)
    bench = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(bench)

    print(f"qos report (seed={seed}): one starved box at 4x offered load, "
          f"{bench.DEADLINE_S:.0f}s session deadline")
    for mode in ("off", "on"):
        result = bench.run_overload(mode, 4.0, seed, duration=10.0)
        print(f"  plane {mode}:")
        print(f"    goodput:   {result['goodput_per_s']:.2f}/s "
              f"({result['goodput_vs_attainable'] * 100:.1f}% of "
              f"attainable, capacity {result['capacity_per_s']:.2f}/s)")
        print(f"    sessions:  {result['good']} good / "
              f"{result['completed']} completed / "
              f"{result['n_sessions']} offered "
              f"(gave up: {result['gave_up']})")
        print(f"    latency:   p50 {result['p50_s']:.2f}s  "
              f"p99 {result['p99_s']:.2f}s")
        print(f"    plane:     admitted={result['qos_admitted']} "
              f"rejected={result['qos_rejected']} "
              f"shed={result['qos_shed']}")


def _scenario_chain_report(seed: int) -> None:
    """Embed the stock Cover→Browser-defense→Store chain jointly against
    the directory's load table, deploy it over attested sessions, push
    traffic units end to end, and print the joint-vs-greedy placement
    contrast.

    The full overload sweep (0.5x-4x offered load, with the gated
    joint-vs-greedy goodput margin) lives in
    ``benchmarks/bench_chain.py``; this scenario is the quick look.
    """
    from repro.chain import ChainDeployment, greedy_embed, pipeline_chain
    from repro.core import BentoClient, BentoServer
    from repro.enclave.attestation import IntelAttestationService
    from repro.migrate import MigrationConfig
    from repro.perf.counters import counters
    from repro.tor import TorTestNetwork

    net = TorTestNetwork(n_relays=12, seed=seed, bento_fraction=0.5)
    ias = IntelAttestationService(net.sim.rng.fork("ias"))
    servers = [BentoServer(relay, net.authority, ias=ias,
                           migrate=MigrationConfig(quiesce_poll_s=0.05))
               for relay in net.bento_boxes()]
    client = BentoClient(net.create_client("chain-op"), ias=ias)
    spec = pipeline_chain()
    dep = ChainDeployment(client, spec,
                          servers={s.relay.fingerprint: s for s in servers})
    counters.reset()
    verified = []

    def flow(thread):
        """Deploy the chain, stream five units through it, tear down."""
        yield from dep.deploy(thread)
        for i in range(5):
            payload = f"unit-{i}".encode()
            out = yield from dep.push(thread, payload)
            verified.append(out == dep.expected_outputs(payload))
        yield from dep.shutdown(thread)

    net.sim.run_until_done(net.sim.spawn(flow))
    greedy = greedy_embed(spec, client.discover_boxes(),
                          client.tor.directory.load_table())
    print(f"chain report (seed={seed}): template {spec.name!r}, "
          f"digest {spec.digest()[:16]}…")
    print(f"  units pushed : {len(verified)} "
          f"(outputs verified: {sum(verified)}/{len(verified)})")
    for label, overlay in (("joint", dep.overlay), ("greedy", greedy)):
        obj = overlay.objective
        print(f"  {label:6s} embed : {obj['replicas']} replicas on "
              f"{obj['boxes_used']} boxes, peak box load "
              f"{obj['peak_box_units_per_s']:.1f} units/s, "
              f"cross-box {obj['cross_box_bytes_per_s']:.0f} B/s")
    print(f"  counters     : embeds={counters.chain_embeds} "
          f"reembeds={counters.chain_reembeds} "
          f"arc_bytes={counters.chain_arc_bytes} "
          f"delivered={counters.chain_units_delivered}")
    print(f"done at simulated t={net.sim.now:.2f}s")


def _scenario_migrate_report(seed: int) -> None:
    """Run the chaos soak once per recovery mode and print how the same
    losses recover: cold respawn vs warm-standby promotion for the
    LoadBalancer, cold redeploy vs drain-then-migrate for a stateful
    kvstore tenant.

    The full comparison (with the plane-off bit-identity re-run and the
    hard acceptance checks) lives in ``benchmarks/bench_migrate.py``;
    this scenario is the quick look.
    """
    from repro.chaos import run_chaos_soak

    print(f"migrate report (seed={seed}): chaos soak per recovery mode")
    for mode in ("cold", "standby", "migrate", "tenant-cold"):
        result = run_chaos_soak(seed=seed, recovery_mode=mode)
        print(f"  {mode}:")
        for kind, stats in sorted(result["recovery"].items()):
            print(f"    {kind:14s} n={stats['count']}  "
                  f"p50 {stats['p50_s']}s  p99 {stats['p99_s']}s")
        tenant = result["tenant"]
        if tenant is not None:
            print(f"    tenant         recovery {tenant['recovery_s']}s, "
                  f"state {'preserved' if tenant['state_preserved'] else 'LOST'}, "
                  f"{tenant['redeploys']} redeploys, "
                  f"{tenant['ops_ok']} ops ok")
        interesting = {name: value
                       for name, value in result["counters"].items()
                       if value and ("migration" in name or "standby" in name
                                     or "checkpoint" in name)}
        if interesting:
            print(f"    counters       {interesting}")


def _scenario_workload_report(seed: int, spec_path: str | None = None,
                              preset_name: str | None = None,
                              out: str | None = None,
                              workers: int = 1) -> None:
    """Run one declarative workload scenario and print its SLO report.

    The scenario comes from ``--spec FILE`` (a WorkloadSpec JSON file) or
    ``--preset NAME`` (a stock scenario; default ``qos-flash``).  A spec
    is self-contained — it carries its own seed, tenants, planes, and SLO
    assertions — so ``--seed`` is ignored here; edit the spec to change
    it.  With ``--out DIR`` the run also writes ``spec.json``,
    ``report.json``, and the replay-identity ``events.jsonl``.

    ``--workers K`` runs the scenario as K tenant-partitioned replica
    fleets (forked processes where available; see
    :mod:`repro.workload.sharded`) and rolls the merged result into the
    same SLO report.  The per-run ``events.jsonl`` artifact is a
    single-fleet replay identity and is skipped for sharded runs.

    Exits nonzero when any declared SLO fails.
    """
    import hashlib
    import json
    import os

    from repro.obs.export import events_to_jsonl
    from repro.obs.span import EventLog
    from repro.workload import (WorkloadSpec, build_report, render_report,
                                run_workload, run_workload_sharded)
    from repro.workload.presets import PRESETS, preset

    if spec_path is not None:
        spec = WorkloadSpec.from_file(spec_path)
    else:
        name = preset_name or "qos-flash"
        if name not in PRESETS:
            print(f"unknown preset {name!r}; available: "
                  + ", ".join(sorted(PRESETS)))
            raise SystemExit(2)
        spec = preset(name)
    log = None
    if workers > 1:
        result = run_workload_sharded(spec, workers)
        print(f"[{len(result['fleets'])} tenant-partitioned fleets on "
              f"{workers} workers]")
    else:
        log = EventLog()
        result = run_workload(spec, trace_log=log)
    report = build_report(spec, result)
    print(render_report(report))
    if out is not None:
        os.makedirs(out, exist_ok=True)
        with open(os.path.join(out, "spec.json"), "w",
                  encoding="utf-8") as fh:
            fh.write(spec.to_json())
        artifacts = {"report": report}
        if log is not None:
            jsonl = events_to_jsonl(log)
            digest = hashlib.sha256(jsonl.encode("utf-8")).hexdigest()
            with open(os.path.join(out, "events.jsonl"), "w",
                      encoding="utf-8") as fh:
                fh.write(jsonl)
            artifacts["events_jsonl_sha256"] = digest
        with open(os.path.join(out, "report.json"), "w",
                  encoding="utf-8") as fh:
            json.dump(artifacts, fh, indent=2, sort_keys=True)
            fh.write("\n")
        if log is not None:
            print(f"artifacts in {out}/ "
                  f"(events.jsonl sha256 {digest[:16]}…)")
        else:
            print(f"artifacts in {out}/ (events.jsonl skipped: sharded "
                  f"runs have per-fleet logs)")
    if not report["passed"]:
        raise SystemExit(1)


SCENARIOS = {
    "quickstart": _scenario_quickstart,
    "workload-report": _scenario_workload_report,
    "migrate-report": _scenario_migrate_report,
    "scale-report": _scenario_scale_report,
    "qos-report": _scenario_qos_report,
    "chain-report": _scenario_chain_report,
    "fingerprint": _scenario_fingerprint,
    "perf-report": _scenario_perf_report,
    "chaos-soak": _scenario_chaos_soak,
    "trace-report": _scenario_trace_report,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bento (SIGCOMM 2021) reproduction — demo scenarios")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    parser.add_argument("scenario",
                        choices=sorted(SCENARIOS) + ["list"],
                        help="scenario to run (or 'list')")
    parser.add_argument("--seed", type=int, default=2021,
                        help="simulation seed (default: 2021)")
    parser.add_argument("--out", default="trace-report",
                        help="output directory for trace-report artifacts "
                             "(default: trace-report)")
    parser.add_argument("--spec", default=None, metavar="FILE",
                        help="workload-report: run this WorkloadSpec JSON "
                             "file instead of a preset")
    parser.add_argument("--preset", default=None, metavar="NAME",
                        help="workload-report: stock scenario to run "
                             "(default: qos-flash)")
    parser.add_argument("--workload-out", default=None, metavar="DIR",
                        help="workload-report: also write spec.json, "
                             "report.json, and events.jsonl here")
    parser.add_argument("--workers", type=int, default=1, metavar="K",
                        help="scale-report: shard the mesh sim across K "
                             "worker processes and print the parallel "
                             "quick-look; workload-report: run K "
                             "tenant-partitioned replica fleets "
                             "(default: 1)")
    args = parser.parse_args(argv)
    if args.scenario == "list":
        width = max(len(name) for name in SCENARIOS)
        for name in sorted(SCENARIOS):
            doc = (SCENARIOS[name].__doc__ or "").strip()
            summary = doc.splitlines()[0] if doc else ""
            print(f"{name:<{width}}  {summary}")
        return 0
    if args.scenario == "trace-report":
        SCENARIOS[args.scenario](args.seed, out=args.out)
    elif args.scenario == "workload-report":
        SCENARIOS[args.scenario](args.seed, spec_path=args.spec,
                                 preset_name=args.preset,
                                 out=args.workload_out,
                                 workers=args.workers)
    elif args.scenario == "scale-report":
        SCENARIOS[args.scenario](args.seed, workers=args.workers)
    else:
        SCENARIOS[args.scenario](args.seed)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
