"""Invocation and shutdown tokens (§5.3), plus the blinded variant.

    "The server spawns the container and returns to the client two tokens:
    an invocation token and a shutdown token. ... The distinction ...
    allows a client to share the invocation token (and thus, use of the
    function) with other users while retaining exclusive shutdown rights."

Plain tokens are capability strings minted by the server.  The blinded
scheme (footnote 3: "tokens can be blinded, especially with the use of an
enclave") is also implemented: the client mints the token value itself and
gets it blind-signed, so the server can later *verify* a presented token
without being able to link it to the session that obtained it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.rsa import RsaKeyPair, RsaPublicKey
from repro.util.idgen import IdGenerator
from repro.util.rng import DeterministicRandom


@dataclass(frozen=True)
class TokenPair:
    """The two capabilities returned on container creation."""

    invocation: str
    shutdown: str


class TokenIssuer:
    """Server-side mint for plain (unlinkable-enough) random tokens."""

    def __init__(self, seed: str) -> None:
        self._ids = IdGenerator(f"tokens:{seed}")

    def issue(self) -> TokenPair:
        """Mint a fresh invocation/shutdown token pair."""
        return TokenPair(invocation=f"inv-{self._ids.next_hex(16)}",
                         shutdown=f"sd-{self._ids.next_hex(16)}")


class BlindTokenIssuer:
    """Server side of Chaum-blinded tokens.

    The server signs blinded token values at container-creation time and
    later accepts any ``(value, signature)`` pair that verifies and has not
    been spent — without ever having seen ``value`` before.
    """

    def __init__(self, rng: DeterministicRandom, key_bits: int = 512) -> None:
        self._keypair = RsaKeyPair.generate(rng.fork("blind-token-key"),
                                            bits=key_bits)
        self._spent: set[bytes] = set()

    @property
    def public_key(self) -> RsaPublicKey:
        """The verification key peers should pin."""
        return self._keypair.public

    def sign_blinded(self, blinded: int) -> int:
        """Blind-sign a value (the server learns nothing about it)."""
        return self._keypair.blind_sign(blinded)

    def redeem(self, value: bytes, signature: bytes) -> bool:
        """Accept a token once: valid signature and not previously spent."""
        if value in self._spent:
            return False
        if not self._keypair.public.verify(value, signature):
            return False
        self._spent.add(value)
        return True


@dataclass
class BlindToken:
    """A client-held unlinkable token."""

    value: bytes
    signature: bytes


class BlindTokenWallet:
    """Client side: mint values, blind them, unblind the signatures."""

    def __init__(self, rng: DeterministicRandom, issuer_key: RsaPublicKey) -> None:
        self._rng = rng
        self._issuer_key = issuer_key

    def prepare(self) -> tuple[bytes, int, int]:
        """Returns ``(value, blinded, unblinder)``; send ``blinded`` off
        to the issuer."""
        value = self._rng.randbytes(20)
        blinded, unblinder = self._issuer_key.blind(value, self._rng)
        return value, blinded, unblinder

    def finish(self, value: bytes, blind_signature: int,
               unblinder: int) -> BlindToken:
        """Unblind the issuer's response into a spendable token."""
        signature = self._issuer_key.unblind(blind_signature, unblinder)
        return BlindToken(value=value, signature=signature)
