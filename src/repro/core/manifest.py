"""Function manifests (§5.5).

    "When a user sends a function to a Bento server, the user includes the
    function's manifest file, similar in spirit to an Android app manifest.
    ... the Bento server sets up the execution environment, and constrains
    the sandbox or conclave to permit only the specific API calls that the
    manifest file requested (even if the middlebox policy allowed for
    more)."

The syscall list is derived from the requested API calls by default, so a
manifest can only *narrow* from there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.apispec import ALL_API_CALLS, syscalls_for

MB = 1024 * 1024

#: Serving-plane priority classes a manifest may declare.  "bulk" is the
#: default and is shed first under overload; "interactive" gets a larger
#: weighted-fair share and survives shedding longest.
PRIORITY_CLASSES = ("bulk", "interactive")


@dataclass(frozen=True)
class FunctionManifest:
    """Everything a Bento server needs to know before accepting a function."""

    name: str
    entry: str                      # name of the function to call on invoke
    api_calls: frozenset
    image: str = "python"           # "python" or "python-op-sgx" (§5.4)
    memory_bytes: int = 4 * MB
    disk_bytes: int = 0
    syscalls: frozenset = frozenset()
    priority: str = "bulk"          # serving-plane class (see PRIORITY_CLASSES)

    def __post_init__(self) -> None:
        unknown = set(self.api_calls) - ALL_API_CALLS
        if unknown:
            raise ValueError(f"manifest requests unknown api calls: {sorted(unknown)}")
        if not self.name or not self.entry:
            raise ValueError("manifest needs a name and an entry point")
        if self.memory_bytes < 0 or self.disk_bytes < 0:
            raise ValueError("resource requests must be non-negative")
        if self.priority not in PRIORITY_CLASSES:
            raise ValueError(f"unknown priority class: {self.priority!r}")
        if not self.syscalls:
            object.__setattr__(self, "syscalls", syscalls_for(self.api_calls))

    @classmethod
    def create(cls, name: str, entry: str, api_calls: Iterable[str],
               image: str = "python", memory_bytes: int = 4 * MB,
               disk_bytes: int = 0,
               syscalls: Optional[Iterable[str]] = None,
               priority: str = "bulk") -> "FunctionManifest":
        """The ergonomic constructor (derives syscalls unless given)."""
        return cls(name=name, entry=entry, api_calls=frozenset(api_calls),
                   image=image, memory_bytes=memory_bytes,
                   disk_bytes=disk_bytes,
                   syscalls=frozenset(syscalls) if syscalls is not None
                   else frozenset(),
                   priority=priority)

    @property
    def wants_enclave(self) -> bool:
        """Does this manifest require the SGX image?"""
        return self.image == "python-op-sgx"

    def to_wire(self) -> dict:
        """A plain-dict form safe to canonically encode.

        ``priority`` is only encoded when it differs from the default so
        pre-serving-plane manifests keep byte-identical wire encodings
        (the golden transfer vectors and fixed-seed soaks depend on it).
        """
        wire = {
            "name": self.name,
            "entry": self.entry,
            "api_calls": sorted(self.api_calls),
            "image": self.image,
            "memory": self.memory_bytes,
            "disk": self.disk_bytes,
            "syscalls": sorted(self.syscalls),
        }
        if self.priority != "bulk":
            wire["priority"] = self.priority
        return wire

    @classmethod
    def from_wire(cls, wire: dict) -> "FunctionManifest":
        """Reconstruct from :meth:`to_wire` output."""
        return cls(
            name=wire["name"],
            entry=wire["entry"],
            api_calls=frozenset(wire["api_calls"]),
            image=wire["image"],
            memory_bytes=int(wire["memory"]),
            disk_bytes=int(wire["disk"]),
            syscalls=frozenset(wire["syscalls"]),
            priority=str(wire.get("priority", "bulk")),
        )
