"""Bento's exception hierarchy."""

from repro.util.errors import ReproError


class BentoError(ReproError):
    """Base class for Bento-level failures."""


class ManifestRejected(BentoError):
    """The function's manifest asks for more than the node's policy permits."""


class TokenInvalid(BentoError):
    """An unknown, spent, or forged invocation/shutdown token."""


class FunctionCrashed(BentoError):
    """The function raised (or was killed by the sandbox) during execution."""


class ImageUnavailable(BentoError):
    """The requested container image is not offered by this Bento server."""


class AttestationRejected(BentoError):
    """The client refused the server's attestation evidence."""


class ServerBusy(BentoError):
    """The serving plane refused admission; retry after ``retry_after`` s.

    Carried on the wire as an ``error`` frame with reason ``server-busy``
    and a structured ``retry_after`` field that
    :meth:`~repro.core.client.BentoClient.retrying` honors instead of its
    exponential backoff.
    """

    def __init__(self, detail: str, retry_after: float = 0.0) -> None:
        self.retry_after = float(retry_after)
        super().__init__(detail)


class FunctionMoved(BentoError):
    """The function migrated to another box; reattach there.

    Carried as an ``error`` frame with reason ``moved`` and a structured
    ``box_fp`` field naming the destination box's identity fingerprint.
    :meth:`~repro.core.client.BentoClient.retrying` retargets the session
    at ``box_fp`` before its next reconnect, so callers see a bounded
    pause rather than a hard failure.
    """

    def __init__(self, detail: str, box_fp: str = "") -> None:
        self.box_fp = str(box_fp)
        super().__init__(detail)


class PuzzleRequired(BentoError):
    """Under shed pressure the box demands a client puzzle before admitting.

    Carried as an ``error`` frame with reason ``puzzle-required`` plus the
    hashcash ``challenge`` (hex on the wire) and ``difficulty`` bits; the
    client solves it (see :mod:`repro.functions.ddos_defense`) and resends
    the request with ``pow_challenge``/``pow_nonce`` attached.
    """

    def __init__(self, detail: str, challenge: bytes = b"",
                 difficulty: int = 0) -> None:
        self.challenge = bytes(challenge)
        self.difficulty = int(difficulty)
        super().__init__(detail)
