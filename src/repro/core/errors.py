"""Bento's exception hierarchy."""

from repro.util.errors import ReproError


class BentoError(ReproError):
    """Base class for Bento-level failures."""


class ManifestRejected(BentoError):
    """The function's manifest asks for more than the node's policy permits."""


class TokenInvalid(BentoError):
    """An unknown, spent, or forged invocation/shutdown token."""


class FunctionCrashed(BentoError):
    """The function raised (or was killed by the sandbox) during execution."""


class ImageUnavailable(BentoError):
    """The requested container image is not offered by this Bento server."""


class AttestationRejected(BentoError):
    """The client refused the server's attestation evidence."""
