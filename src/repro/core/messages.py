"""The Bento wire protocol.

Every message is a canonical-encoded dict with a ``"type"`` field, carried
as one frame on a :class:`~repro.netsim.bytestream.FramedStream` (which may
run over a Tor stream, a hidden-service stream, or a direct connection —
the protocol does not care).

Client -> server:
    ``policy_query`` | ``request_image`` | ``load_function`` | ``invoke``
    | ``msg`` | ``attach`` | ``shutdown`` | ``checkpoint`` | ``restore``
Server -> client:
    ``policy`` | ``image_ready`` | ``loaded`` | ``output`` | ``done``
    | ``shutdown_ok`` | ``checkpoint_data`` | ``restored`` | ``error``
"""

from __future__ import annotations

from typing import Any

from repro.util.errors import ProtocolError
from repro.util.serialization import canonical_decode, canonical_encode

# Client -> server.
POLICY_QUERY = "policy_query"
REQUEST_IMAGE = "request_image"
LOAD_FUNCTION = "load_function"
INVOKE = "invoke"
MSG = "msg"                 # an in-band message to a running function
ATTACH = "attach"           # bind this connection to an invocation token
SHUTDOWN = "shutdown"
CHECKPOINT = "checkpoint"   # owner-only: snapshot a checkpointable function
RESTORE = "restore"         # apply a checkpoint to a freshly loaded instance

# Server -> client.
POLICY = "policy"
IMAGE_READY = "image_ready"
LOADED = "loaded"
OUTPUT = "output"           # api.send() from the function
DONE = "done"               # entry function returned
SHUTDOWN_OK = "shutdown_ok"
CHECKPOINT_DATA = "checkpoint_data"
RESTORED = "restored"
ERROR = "error"

_CLIENT_TYPES = frozenset({POLICY_QUERY, REQUEST_IMAGE, LOAD_FUNCTION,
                           INVOKE, MSG, ATTACH, SHUTDOWN, CHECKPOINT,
                           RESTORE})
_SERVER_TYPES = frozenset({POLICY, IMAGE_READY, LOADED, OUTPUT, DONE,
                           SHUTDOWN_OK, CHECKPOINT_DATA, RESTORED, ERROR})


def encode_message(msg_type: str, **fields: Any) -> bytes:
    """Build one wire frame."""
    if msg_type not in (_CLIENT_TYPES | _SERVER_TYPES):
        raise ProtocolError(f"unknown message type: {msg_type}")
    body = dict(fields)
    body["type"] = msg_type
    return canonical_encode(body)


def decode_message(frame: bytes) -> dict:
    """Parse one wire frame; raises :class:`ProtocolError` if malformed."""
    try:
        body = canonical_decode(frame)
    except Exception as exc:
        raise ProtocolError(f"undecodable message: {exc}") from exc
    if not isinstance(body, dict) or "type" not in body:
        raise ProtocolError("message missing type field")
    if body["type"] not in (_CLIENT_TYPES | _SERVER_TYPES):
        raise ProtocolError(f"unknown message type: {body['type']}")
    return body


def error_message(reason: str, detail: str = "", **fields: Any) -> bytes:
    """A server-side error frame.

    Extra ``fields`` carry structured data alongside the human-readable
    detail — ``retry_after`` on ``server-busy``, the ``challenge`` and
    ``difficulty`` on ``puzzle-required``.
    """
    return encode_message(ERROR, reason=reason, detail=detail, **fields)
