"""Middlebox node policies (§5.5).

    "Bento's middlebox node policies are boolean values over the set of
    API calls that Bento exposes to functions.  Every system call and Stem
    library function that can be exposed to functions is also specified in
    the middlebox node policy."

A policy is therefore: an API-call allowlist, a syscall allowlist, offered
images, and resource ceilings (per function and, per §5.3, in aggregate so
the co-resident Tor relay keeps a guaranteed share of the machine).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.apispec import ALL_API_CALLS
from repro.sandbox.seccomp import ALL_SYSCALLS

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.manifest import FunctionManifest

MB = 1024 * 1024


@dataclass(frozen=True)
class MiddleboxNodePolicy:
    """One operator's statement of what they will do on others' behalf."""

    allowed_api_calls: frozenset = frozenset(ALL_API_CALLS)
    allowed_syscalls: frozenset = frozenset(ALL_SYSCALLS - {"fork", "execve"})
    offered_images: tuple = ("python", "python-op-sgx")
    max_function_memory: int = 64 * MB
    max_function_disk: int = 64 * MB
    max_total_memory: int = 512 * MB
    max_total_disk: int = 1024 * MB
    max_containers: int = 16
    # The §5.5 "alternative design" hook: API calls that are only permitted
    # when the function runs inside an enclave image.
    enclave_only_api_calls: frozenset = frozenset()

    def __post_init__(self) -> None:
        unknown_api = set(self.allowed_api_calls) - ALL_API_CALLS
        if unknown_api:
            raise ValueError(f"unknown api calls in policy: {sorted(unknown_api)}")
        unknown_sys = set(self.allowed_syscalls) - ALL_SYSCALLS
        if unknown_sys:
            raise ValueError(f"unknown syscalls in policy: {sorted(unknown_sys)}")

    # -- presets ------------------------------------------------------------

    @classmethod
    def open_policy(cls) -> "MiddleboxNodePolicy":
        """An operator willing to run anything (within resource caps)."""
        return cls()

    @classmethod
    def no_disk_policy(cls) -> "MiddleboxNodePolicy":
        """§6.2's most-protective stance: functions may never touch disk."""
        return cls(
            allowed_api_calls=frozenset(
                c for c in ALL_API_CALLS if not c.startswith("storage.")),
            allowed_syscalls=frozenset(
                self_call for self_call in ALL_SYSCALLS
                if self_call not in ("open", "unlink", "fork", "execve")),
            max_function_disk=0,
        )

    @classmethod
    def enclave_storage_policy(cls) -> "MiddleboxNodePolicy":
        """Disk writes allowed only inside the SGX image (encrypted by
        FS Protect), the middle-ground stance §6.2 describes."""
        return cls(enclave_only_api_calls=frozenset(
            {"storage.put", "storage.get", "storage.list", "storage.delete"}))

    @classmethod
    def network_measurement_policy(cls) -> "MiddleboxNodePolicy":
        """Only passive measurement: no storage, no hidden services."""
        allowed = frozenset({
            "send", "recv", "log", "sleep", "time", "random",
            "http_get", "connect",
            "stem.new_circuit", "stem.close_circuit", "stem.attach_stream",
            "stem.get_network_statuses", "stem.get_info",
        })
        return cls(allowed_api_calls=allowed, max_function_disk=0)

    # -- evaluation ------------------------------------------------------------

    def rejection_reason(self, manifest: "FunctionManifest") -> Optional[str]:
        """Why this manifest is unacceptable, or ``None`` if it is fine.

        Mirrors §5.5: "if the manifest asks for more permissions than the
        node's policy permits, then the function is rejected."
        """
        if manifest.image not in self.offered_images:
            return f"image {manifest.image!r} not offered"
        excess_api = set(manifest.api_calls) - set(self.allowed_api_calls)
        if excess_api:
            return f"api calls not permitted: {sorted(excess_api)}"
        if manifest.image != "python-op-sgx":
            enclave_only = set(manifest.api_calls) & set(self.enclave_only_api_calls)
            if enclave_only:
                return (f"api calls permitted only inside an enclave image: "
                        f"{sorted(enclave_only)}")
        excess_sys = set(manifest.syscalls) - set(self.allowed_syscalls)
        if excess_sys:
            return f"syscalls not permitted: {sorted(excess_sys)}"
        if manifest.memory_bytes > self.max_function_memory:
            return (f"memory request {manifest.memory_bytes} exceeds "
                    f"{self.max_function_memory}")
        if manifest.disk_bytes > self.max_function_disk:
            return (f"disk request {manifest.disk_bytes} exceeds "
                    f"{self.max_function_disk}")
        return None

    def permits(self, manifest: "FunctionManifest") -> bool:
        """Boolean form of :meth:`rejection_reason`."""
        return self.rejection_reason(manifest) is None

    # -- wire form ----------------------------------------------------------------

    def to_wire(self) -> dict:
        """A plain-dict form safe to canonically encode."""
        return {
            "api_calls": sorted(self.allowed_api_calls),
            "syscalls": sorted(self.allowed_syscalls),
            "images": list(self.offered_images),
            "max_function_memory": self.max_function_memory,
            "max_function_disk": self.max_function_disk,
            "max_total_memory": self.max_total_memory,
            "max_total_disk": self.max_total_disk,
            "max_containers": self.max_containers,
            "enclave_only": sorted(self.enclave_only_api_calls),
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "MiddleboxNodePolicy":
        """Reconstruct from :meth:`to_wire` output."""
        return cls(
            allowed_api_calls=frozenset(wire["api_calls"]),
            allowed_syscalls=frozenset(wire["syscalls"]),
            offered_images=tuple(wire["images"]),
            max_function_memory=int(wire["max_function_memory"]),
            max_function_disk=int(wire["max_function_disk"]),
            max_total_memory=int(wire["max_total_memory"]),
            max_total_disk=int(wire["max_total_disk"]),
            max_containers=int(wire["max_containers"]),
            enclave_only_api_calls=frozenset(wire["enclave_only"]),
        )
