"""The standard container images (§5.4).

    "Bento operators are responsible for providing container images ...
    we envision two standard images that collectively handle a broad set
    of use cases": the plain *Python* image and *Python-OP-SGX*, which
    runs the function (plus an optional dedicated Onion Proxy) inside an
    enclave.

The enclave image's measurement is a public constant, so Bento clients can
check attestation reports against it without trusting the operator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.errors import ImageUnavailable
from repro.enclave.sgx import EnclaveImage

MB = 1024 * 1024

# The enclave image covers the Bento execution environment: server shim,
# loader, and Python runtime (§5.4: user functions are NOT part of the
# measurement).  These bytes stand in for that runtime; what matters is
# that every honest operator runs the same ones.
_RUNTIME_CODE = (
    b"bento-execution-environment\x00"
    b"components: function-loader, python-3, stem-firewall-shim, "
    b"optional-onion-proxy\x00"
    b"version: 1.0.0\x00"
)


@dataclass(frozen=True)
class ContainerImage:
    """A named execution environment operators can offer."""

    name: str
    base_memory: int            # resident footprint before any function
    uses_enclave: bool
    enclave_image: Optional[EnclaveImage] = None
    spawns_onion_proxy: bool = False

    @property
    def measurement(self) -> Optional[str]:
        """The expected MRENCLAVE (None for non-enclave images)."""
        return self.enclave_image.measurement if self.enclave_image else None


# §7.3: "The maximum memory usage of a Bento server and Browser is roughly
# 16-20 MB" — we model the image baseline at 16 MB, functions add their own.
IMAGE_PYTHON = ContainerImage(
    name="python",
    base_memory=16 * MB,
    uses_enclave=False,
)

IMAGE_PYTHON_OP_SGX = ContainerImage(
    name="python-op-sgx",
    base_memory=16 * MB,
    uses_enclave=True,
    enclave_image=EnclaveImage(name="python-op-sgx", code=_RUNTIME_CODE,
                               version=1),
    spawns_onion_proxy=True,
)

_REGISTRY = {image.name: image for image in (IMAGE_PYTHON, IMAGE_PYTHON_OP_SGX)}


def image_by_name(name: str) -> ContainerImage:
    """Look up a standard image; raises :class:`ImageUnavailable`."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ImageUnavailable(f"no such image: {name}") from None


def known_measurement(name: str) -> str:
    """The measurement a client should demand for an enclave image."""
    image = image_by_name(name)
    if image.measurement is None:
        raise ImageUnavailable(f"image {name} is not an enclave image")
    return image.measurement
