"""The in-container function loader and runtime.

Client-provided source is executed in a namespace whose only capability is
the ``api`` object; builtins are reduced to a computational subset and
``import`` is limited to a small allowlist of pure-computation modules
(``zlib``, ``math``, ...).  This mirrors the paper's stance: the *code* is
unconstrained Python, and safety comes from what the environment lets it
reach (§5.1: "Rather than enforce safety by limiting functions' code
itself, Bento servers run functions in sandboxes").
"""

from __future__ import annotations

import builtins as _builtins
import inspect
from typing import Any, Callable, Optional

from repro.core.errors import BentoError, FunctionCrashed
from repro.core.manifest import FunctionManifest

# Pure-computation modules a function may import.  Nothing here touches
# the filesystem, network, processes, or interpreter internals.
SAFE_MODULES = frozenset({
    "zlib", "math", "json", "struct", "hashlib", "base64", "binascii",
    "string", "re", "itertools", "functools", "collections", "heapq",
    "bisect", "textwrap", "datetime", "statistics",
})

_SAFE_BUILTIN_NAMES = (
    "abs", "all", "any", "ascii", "bin", "bool", "bytearray", "bytes",
    "callable", "chr", "dict", "divmod", "enumerate", "filter", "float",
    "format", "frozenset", "hash", "hex", "int", "isinstance", "issubclass",
    "iter", "len", "list", "map", "max", "min", "next", "object", "oct",
    "ord", "pow", "print", "range", "repr", "reversed", "round", "set",
    "slice", "sorted", "str", "sum", "tuple", "zip",
    # exceptions functions might reasonably raise/catch
    "ArithmeticError", "AssertionError", "AttributeError", "BaseException",
    "Exception", "IndexError", "KeyError", "LookupError", "OverflowError",
    "RuntimeError", "StopIteration", "TypeError", "ValueError",
    "ZeroDivisionError",
)


class LoaderError(BentoError):
    """The uploaded source failed to compile, import, or define its entry."""


def _make_safe_import() -> Callable:
    def safe_import(name: str, globals=None, locals=None, fromlist=(), level=0):
        """Importer restricted to the SAFE_MODULES allowlist."""
        root = name.split(".")[0]
        if root not in SAFE_MODULES:
            raise ImportError(
                f"import of {name!r} is not permitted inside a Bento function")
        return _builtins.__import__(name, globals, locals, fromlist, level)
    return safe_import


def build_function_namespace(api) -> dict[str, Any]:
    """The globals dict uploaded code executes in."""
    safe_builtins = {name: getattr(_builtins, name)
                     for name in _SAFE_BUILTIN_NAMES}
    safe_builtins["__import__"] = _make_safe_import()
    return {
        "__builtins__": safe_builtins,
        "__name__": "bento_function",
        "api": api,
    }


class FunctionRuntime:
    """Loads source once, then runs the entry per invocation."""

    def __init__(self, instance, code: str, manifest: FunctionManifest) -> None:
        self.instance = instance
        self.code = code
        self.manifest = manifest
        self.namespace: Optional[dict] = None
        self.entry: Optional[Callable] = None
        self.running = False
        # The args of the most recent start(); a restored instance re-runs
        # its entry with these (the migration plane ships them in the
        # checkpoint).
        self.last_args: Optional[list] = None

    def load(self) -> None:
        """Compile and execute the module body; locate the entry point."""
        namespace = build_function_namespace(self.instance.api)
        try:
            compiled = compile(self.code, f"<function:{self.manifest.name}>",
                               "exec")
            exec(compiled, namespace)  # noqa: S102 - the point of Bento
        except Exception as exc:
            raise LoaderError(f"function failed to load: {exc!r}") from exc
        entry = namespace.get(self.manifest.entry)
        if not callable(entry):
            raise LoaderError(
                f"entry point {self.manifest.entry!r} not found or not callable")
        self.namespace = namespace
        self.entry = entry

    # -- checkpoint/restore (the migration plane's view of a function) ----

    @property
    def checkpointable(self) -> bool:
        """Did the uploaded source define ``checkpoint()``/``restore(state)``?

        The protocol is opt-in at the function level: a function that keeps
        migratable state exports a plain ``checkpoint()`` callable returning
        a canonical-encodable value and a ``restore(state)`` callable that
        reinstates it.  Both run synchronously (no api access needed)."""
        if self.namespace is None:
            return False
        return (callable(self.namespace.get("checkpoint"))
                and callable(self.namespace.get("restore")))

    def checkpoint_state(self) -> Any:
        """Snapshot the function's exported state."""
        if not self.checkpointable:
            raise LoaderError(
                f"function {self.manifest.name!r} is not checkpointable")
        return self.namespace["checkpoint"]()

    def restore_state(self, state: Any) -> None:
        """Reinstate a snapshot taken by :meth:`checkpoint_state`."""
        if not self.checkpointable:
            raise LoaderError(
                f"function {self.manifest.name!r} is not checkpointable")
        self.namespace["restore"](state)

    def start(self, args: list, peer) -> None:
        """Run one invocation in its own actor.

        Generator-function entries (the coroutine style all in-tree
        functions use) run as :class:`~repro.netsim.simulator.SimTask`\\ s;
        plain entries keep the legacy sim-thread, where blocking api calls
        are driven synchronously.
        """
        if self.entry is None:
            raise LoaderError("function not loaded")
        if self.running:
            raise LoaderError("function already running")
        self.running = True
        self.last_args = list(args)
        sim = self.instance.server.sim
        api = self.instance.api

        if inspect.isgeneratorfunction(self.entry):
            def _run(task):
                from repro.core.api import FunctionKilled

                api._bind(task, peer)
                try:
                    try:
                        result = yield from self.entry(*args)
                    except BaseException as exc:  # noqa: BLE001 - to client
                        self.running = False
                        if (self.instance.draining
                                and isinstance(exc, FunctionKilled)):
                            # A deliberate drain kill: the instance moved;
                            # the client hears "moved", not "crashed".
                            return
                        self.instance.on_error(
                            FunctionCrashed(f"{type(exc).__name__}: {exc}"),
                            peer)
                        return
                    self.running = False
                    self.instance.on_done(result, peer)
                finally:
                    api._unbind(task)
        else:
            def _run(thread) -> None:
                api._bind(thread, peer)
                try:
                    result = self.entry(*args)
                except BaseException as exc:  # noqa: BLE001 - to client
                    self.running = False
                    self.instance.on_error(
                        FunctionCrashed(f"{type(exc).__name__}: {exc}"), peer)
                    return
                self.running = False
                self.instance.on_done(result, peer)

        sim.spawn(_run, name=f"fn:{self.manifest.name}")
