"""Bento: the programmable-middlebox architecture itself.

Everything in this package is the paper's primary contribution (§5):

* :mod:`~repro.core.policy`   -- middlebox node policies (§5.5),
* :mod:`~repro.core.manifest` -- function manifests (§5.5),
* :mod:`~repro.core.tokens`   -- invocation/shutdown tokens, plus the
  blinded-token scheme sketched in §5.3 n.3,
* :mod:`~repro.core.messages` -- the Bento wire protocol,
* :mod:`~repro.core.images`   -- the standard container images (§5.4),
* :mod:`~repro.core.api`      -- the constrained API functions program
  against,
* :mod:`~repro.core.loader`   -- the in-container function runtime,
* :mod:`~repro.core.server`   -- the Bento server (§5.2),
* :mod:`~repro.core.client`   -- the Bento client and session.
"""

from repro.core.errors import (
    BentoError,
    ManifestRejected,
    TokenInvalid,
    FunctionCrashed,
)
from repro.core.policy import MiddleboxNodePolicy, ALL_API_CALLS
from repro.core.manifest import FunctionManifest
from repro.core.tokens import TokenPair, BlindTokenIssuer, BlindTokenWallet
from repro.core.images import (
    ContainerImage,
    IMAGE_PYTHON,
    IMAGE_PYTHON_OP_SGX,
    image_by_name,
)
from repro.core.server import BentoServer
from repro.core.client import BentoClient, BentoSession

__all__ = [
    "BentoError",
    "ManifestRejected",
    "TokenInvalid",
    "FunctionCrashed",
    "MiddleboxNodePolicy",
    "ALL_API_CALLS",
    "FunctionManifest",
    "TokenPair",
    "BlindTokenIssuer",
    "BlindTokenWallet",
    "ContainerImage",
    "IMAGE_PYTHON",
    "IMAGE_PYTHON_OP_SGX",
    "image_by_name",
    "BentoServer",
    "BentoClient",
    "BentoSession",
]
