"""The Bento server (§5.2).

Runs beside an unmodified Tor relay as a separate service on its own port.
Spawns one container per client function, mediates every resource the
function touches, issues invocation/shutdown tokens, and (for the SGX
image) hosts the function inside a conclave with stapled remote
attestation.

Clients reach the server through Tor: a circuit whose final hop is the
companion relay, then a stream to the relay's own address on the Bento
port (the "localhost" exception), or — via
:meth:`BentoServer.serve_via_hidden_service` — as a hidden service.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.core import messages
from repro.core.api import FunctionApi
from repro.core.errors import (
    BentoError,
    FunctionCrashed,
    FunctionMoved,
    ImageUnavailable,
    ManifestRejected,
    PuzzleRequired,
    ServerBusy,
    TokenInvalid,
)
from repro.core.images import ContainerImage, image_by_name
from repro.core.loader import FunctionRuntime, LoaderError
from repro.core.manifest import FunctionManifest
from repro.core.policy import MiddleboxNodePolicy
from repro.core.tokens import TokenIssuer, TokenPair
from repro.enclave.attestation import IntelAttestationService
from repro.enclave.conclave import Conclave
from repro.enclave.sgx import EnclaveHost
from repro.netsim.bytestream import DirectByteStream, FramedStream
from repro.netsim.connection import Connection
from repro.netsim.simulator import Actor, Sleep, blocking
from repro.obs.metrics import REGISTRY as _metrics
from repro.obs.span import TRACER as _obs
from repro.perf.counters import counters as _perf
from repro.sandbox.cgroups import CGroup, ResourceExceeded
from repro.sandbox.container import Container
from repro.sandbox.iptables import IptablesRuleset
from repro.sandbox.memfs import MemFS
from repro.sandbox.seccomp import SeccompPolicy
from repro.stemlib.controller import Controller
from repro.stemlib.firewall import StemFirewall
from repro.tor.client import TorClient
from repro.tor.descriptor import BENTO_PORT
from repro.tor.directory import DirectoryAuthority
from repro.tor.relay import Relay
from repro.util.errors import ProtocolError
from repro.util.serialization import canonical_encode

# Cached registry handles (the registry resets values in place).
_HIT_IMAGE = _metrics.counter("cache_hits", {"layer": "image"})
_MISS_IMAGE = _metrics.counter("cache_misses", {"layer": "image"})
_HIT_POLICY = _metrics.counter("cache_hits", {"layer": "policy"})
_MISS_POLICY = _metrics.counter("cache_misses", {"layer": "policy"})
# bento_requests handles by message type, filled on first dispatch of each
# type — the per-frame hot path skips the registry's label interning.
_REQ_COUNTERS: dict = {}


class FunctionInstance:
    """One loaded function: container + (optional) conclave + runtime."""

    def __init__(self, server: "BentoServer", image: ContainerImage,
                 container: Container, conclave: Optional[Conclave],
                 tokens: TokenPair) -> None:
        self.server = server
        # Numbered per server, not via a class-level counter: the id seeds
        # this instance's RNG fork, and a process-global counter would
        # make a second same-seed run draw different randomness.
        self.instance_id = f"fn-{next(server._instance_ids)}"
        self.image = image
        self.container = container
        self.conclave = conclave
        self.tokens = tokens
        self.manifest: Optional[FunctionManifest] = None
        self.runtime: Optional[FunctionRuntime] = None
        self.firewall: Optional[StemFirewall] = None
        self.api = FunctionApi(self)
        self.rng = server.rng.fork(self.instance_id)
        self.logs: list[str] = []
        self.terminated = False
        self.qos_key = None     # admission slot, set by the serving plane
        # Set by the migration plane while this instance quiesces: recv()
        # stays parked and the inbox accumulates until the drain resolves.
        self.draining = False
        # Client transports that have referenced this instance, and the
        # last time one did — the inputs to orphan reaping.  ``peers`` is
        # a set (membership checks); ``_peer_order`` remembers arrival
        # order so a drain flush can pick the newest live transport
        # deterministically.
        self.peers: set[FramedStream] = set()
        self._peer_order: list[FramedStream] = []
        self.last_activity: float = server.sim.now

    def note_peer(self, peer: FramedStream) -> None:
        """Record a client transport touching this instance."""
        if peer not in self.peers:
            self._peer_order.append(peer)
        self.peers.add(peer)
        self.last_activity = self.server.sim.now

    @property
    def orphaned(self) -> bool:
        """True when every client transport that ever touched this
        instance has died and no invocation is running."""
        if not self.peers:
            return False
        if any(not peer.closed for peer in self.peers):
            return False
        return self.runtime is None or not self.runtime.running

    @property
    def checkpointable(self) -> bool:
        """Does the loaded function implement the checkpoint protocol?"""
        return self.runtime is not None and self.runtime.checkpointable

    # -- lifecycle -------------------------------------------------------

    def load(self, code: str, manifest: FunctionManifest) -> None:
        """Accept a function after the policy check has passed."""
        self.manifest = manifest
        self.container.charge_memory(manifest.memory_bytes)
        if self.conclave is not None:
            self.conclave.enclave.grow(manifest.memory_bytes)
        stem_grant = frozenset(
            call[len("stem."):] for call in manifest.api_calls
            if call.startswith("stem."))
        self.firewall = StemFirewall(self.server.controller, self.instance_id,
                                     stem_grant)
        self.runtime = FunctionRuntime(self, code, manifest)
        self.runtime.load()

    def invoke(self, args: list, peer: FramedStream) -> None:
        """Start the entry function for one invocation."""
        if self.terminated:
            raise TokenInvalid("function already shut down")
        if self.runtime is None:
            raise BentoError("no function loaded")
        if self.runtime.running:
            # A second invoke while running becomes an in-band message.
            self.api._push_message(canonical_encode({"args": args}), peer)
            return
        self.runtime.start(args, peer)

    def deliver(self, payload: bytes, peer: FramedStream) -> None:
        """Route an in-band client message to the function's inbox."""
        if self.terminated:
            raise TokenInvalid("function already shut down")
        self.api._push_message(payload, peer)

    def on_done(self, result, peer: FramedStream) -> None:
        """The entry function returned; report its result to the client."""
        try:
            canonical_encode(result)
            wire_result = result
        except Exception:
            wire_result = repr(result)
        self._safe_send(peer, messages.encode_message(
            messages.DONE, result=wire_result))

    def on_error(self, error: FunctionCrashed, peer: FramedStream) -> None:
        """The entry function crashed; report it to the client."""
        self._safe_send(peer, messages.error_message(
            "function-crashed", detail=str(error)))

    def _safe_send(self, peer: FramedStream, frame: bytes) -> None:
        try:
            peer.send_frame(frame)
        except Exception:
            pass  # the client has gone; fate-sharing is explicit in §5.3

    def kill(self, reason: str, graceful: bool = True) -> None:
        """Terminate (sandbox violation, resource overrun, or shutdown).

        ``graceful=False`` models a host crash: only local state is torn
        down.  A dead box cannot send DESTROY cells or withdraw directory
        entries — its circuits die with its connections, and any
        descriptor it published stays up until it expires or is
        republished (clients must survive the stale entry).
        """
        if self.terminated:
            return
        self.terminated = True
        if graceful and self.api._undelivered:
            # Drain flush: outputs that missed a dead transport get one
            # last chance on the newest live client connection before the
            # function is torn down.
            peer = next((p for p in reversed(self._peer_order)
                         if not p.closed), None)
            if peer is not None:
                self.api._flush_undelivered(peer)
        log = _obs.log
        if log is not None:
            log.instant("core.instance_kill", self.server.sim.now,
                        track=self.server.relay.nickname,
                        instance=self.instance_id, reason=reason,
                        graceful=graceful)
        self.api._kill(reason)
        if self.firewall is not None and graceful:
            self.firewall.release_all()
        if self.conclave is not None:
            self.conclave.terminate()
        self.container.kill(reason)
        self.server._forget(self)

    @property
    def memory_footprint(self) -> int:
        """Total memory charged for this function (§7.3's metric)."""
        return self.container.memory_used


class BentoServer:
    """The middlebox service co-resident with a Tor relay."""

    def __init__(self, relay: Relay, directory: DirectoryAuthority,
                 policy: Optional[MiddleboxNodePolicy] = None,
                 ias: Optional[IntelAttestationService] = None,
                 enclave_host: Optional[EnclaveHost] = None,
                 port: int = BENTO_PORT,
                 orphan_grace_s: Optional[float] = None,
                 qos=None, migrate=None) -> None:
        self.relay = relay
        self.node = relay.node
        self.sim = relay.sim
        self.network = relay.network
        self.directory = directory
        self.port = port
        self.policy = policy or MiddleboxNodePolicy.open_policy()
        self.ias = ias
        self.rng = self.sim.rng.fork(f"bento:{relay.nickname}")
        if ias is not None and enclave_host is None:
            enclave_host = EnclaveHost(self.sim, ias,
                                       rng=self.rng.fork("sgx-host"))
        self.enclave_host = enclave_host
        self.host_fs = MemFS()
        self.root_cgroup = CGroup(
            f"bento:{relay.nickname}",
            memory=self.policy.max_total_memory,
            disk=self.policy.max_total_disk)
        self.tor_client = TorClient(self.network, self.node, directory,
                                    fast_crypto=relay.fast_crypto)
        self.controller = Controller(self.tor_client)
        self._tokens = TokenIssuer(seed=f"{relay.nickname}:{relay.fingerprint}")
        self._by_invocation: dict[str, FunctionInstance] = {}
        self._by_shutdown: dict[str, FunctionInstance] = {}
        self._container_ids = itertools.count(1)
        self._instance_ids = itertools.count(1)
        self.onion_address: Optional[str] = None
        # Orphan reaping is opt-in: with a grace period set, instances
        # whose every client transport has died (and which are not mid-
        # invocation) are killed that many seconds after the last peer
        # drops.  Default None preserves pure §5.3 box fate-sharing.
        self.orphan_grace_s = orphan_grace_s
        # Control-plane caches.  Both hold only policy-derived verdicts
        # (the operator's offered-image check; manifest accept/reject),
        # so the only thing that can stale them is this box losing state
        # — hence both are dropped on crash along with the functions.
        self._image_cache: dict[str, ContainerImage] = {}
        self._manifest_cache: dict[bytes, FunctionManifest] = {}
        # The serving plane is opt-in: pass a QosConfig to enable
        # admission control, fair scheduling, and load shedding.  With
        # qos=None (the default) no plane code runs at all, so existing
        # fixed-seed runs replay bit-identically.  Imported lazily —
        # repro.qos pulls in repro.core submodules, and a top-level
        # import here would cycle through the package __init__.
        if qos is not None:
            from repro.qos import QosConfig, ServingPlane
            if not isinstance(qos, ServingPlane):
                config = qos if isinstance(qos, QosConfig) else QosConfig()
                qos = ServingPlane(self, config)
        self.qos = qos
        # The migration plane is equally opt-in (and equally lazily
        # imported): pass a MigrationConfig (or a ready plane) to enable
        # drain-then-migrate and sealed checkpoint/restore.  migrate=None
        # keeps fixed-seed default runs bit-identical.
        if migrate is not None:
            from repro.migrate import MigrationConfig, MigrationPlane
            if not isinstance(migrate, MigrationPlane):
                config = (migrate if isinstance(migrate, MigrationConfig)
                          else MigrationConfig())
                migrate = MigrationPlane(self, config)
        self.migrate = migrate
        # Tokens of instances that drained away, mapped to the destination
        # box fingerprint — requests against them get a structured "moved"
        # answer instead of "unknown token".
        self._moved: dict[str, str] = {}
        self._reaper_armed = False
        # Host death kills every hosted function with it (fate-sharing
        # with the box); a restart comes back empty.
        self.node.add_crash_listener(self._on_node_crash)

        # Advertise: the relay's descriptor carries the Bento port (§5.5's
        # "disseminated as part of the Tor directory").
        if relay.bento_port != port:
            relay.bento_port = port
            relay.register_with(directory)
        self.node.listen(port, self._accept)

    # -- transport ---------------------------------------------------------

    def _accept(self, conn: Connection) -> None:
        framed = FramedStream(DirectByteStream(conn, self.node))
        self.sim.spawn(self._serve, framed, name=f"bento:{self.relay.nickname}")

    @blocking
    def serve_via_hidden_service(self, thread: Actor,
                                 n_intro: int = 3) -> str:
        """Also expose this server as a hidden service; returns the onion
        address (the paper's alternative access path, §5)."""
        def _handler(stream, _host, _port) -> None:
            framed = FramedStream(stream)
            self.sim.spawn(self._serve, framed,
                           name=f"bento-hs:{self.relay.nickname}")

        service = yield from self.controller.create_hidden_service(thread,
                                                                   _handler)
        self.onion_address = str(service.onion_address)
        return self.onion_address

    def _serve(self, thread: Actor, framed: FramedStream):
        log = _obs.log
        span = log.begin_span(
            "core.session", self.sim.now, track=self.relay.nickname,
            relay=self.relay.nickname) if log is not None else None
        frames_served = 0
        while True:
            try:
                frame = yield from framed.recv_frame(thread, timeout=3600.0)
            except Exception:
                break
            if frame is None:
                break
            frames_served += 1
            try:
                message = messages.decode_message(frame)
            except ProtocolError as exc:
                framed.send_frame(messages.error_message("bad-message",
                                                         detail=str(exc)))
                continue
            try:
                yield from self._dispatch(thread, framed, message)
            except TokenInvalid as exc:
                framed.send_frame(messages.error_message("bad-token",
                                                         detail=str(exc)))
            except ManifestRejected as exc:
                framed.send_frame(messages.error_message("manifest-rejected",
                                                         detail=str(exc)))
            except ServerBusy as exc:
                # Structured refusal: the client's retry loop reads
                # retry_after instead of guessing with exponential backoff.
                framed.send_frame(messages.error_message(
                    "server-busy", detail=str(exc),
                    retry_after=exc.retry_after))
            except PuzzleRequired as exc:
                framed.send_frame(messages.error_message(
                    "puzzle-required", detail=str(exc),
                    challenge=exc.challenge.hex(),
                    difficulty=exc.difficulty))
            except FunctionMoved as exc:
                framed.send_frame(messages.error_message(
                    "moved", detail=str(exc), box_fp=exc.box_fp))
            except (BentoError, ResourceExceeded, LoaderError) as exc:
                framed.send_frame(messages.error_message("request-failed",
                                                         detail=str(exc)))
        if span is not None:
            span.end(self.sim.now, frames=frames_served)
        # This client is gone; sweep for orphans once the grace expires.
        self._arm_reaper()

    def _arm_reaper(self) -> None:
        """Schedule one orphan sweep ``orphan_grace_s`` from now.

        Deduplicated: only one sweep is ever pending, and each sweep
        re-arms itself while instances remain — a long-running server
        keeps reaping instead of sweeping exactly once per dead client."""
        if self.orphan_grace_s is None or self._reaper_armed:
            return
        self._reaper_armed = True
        self.sim.schedule(self.orphan_grace_s, self._reaper_sweep)

    def _reaper_sweep(self) -> None:
        self._reaper_armed = False
        self.reap_orphans()
        if self._by_invocation and self.node.alive:
            self._arm_reaper()

    def _dispatch(self, thread: Actor, framed: FramedStream,
                  message: dict):
        msg_type = message["type"]
        counter = _REQ_COUNTERS.get(msg_type)
        if counter is None:
            counter = _REQ_COUNTERS[msg_type] = _metrics.counter(
                "bento_requests", {"type": msg_type})
        counter.value += 1
        if msg_type == messages.POLICY_QUERY:
            framed.send_frame(messages.encode_message(
                messages.POLICY, policy=self.policy.to_wire()))
        elif msg_type == messages.REQUEST_IMAGE:
            yield from self._handle_request_image(thread, framed, message)
        elif msg_type == messages.LOAD_FUNCTION:
            self._handle_load(framed, message)
        elif msg_type == messages.INVOKE:
            instance = self._instance_for_invocation(message.get("token", ""))
            instance.note_peer(framed)
            log = _obs.log
            if log is not None:
                log.instant("core.invoke", self.sim.now,
                            track=self.relay.nickname,
                            instance=instance.instance_id,
                            n_args=len(message.get("args", [])))
            instance.invoke(list(message.get("args", [])), framed)
        elif msg_type == messages.MSG:
            instance = self._instance_for_invocation(message.get("token", ""))
            instance.note_peer(framed)
            instance.deliver(message.get("payload", b""), framed)
        elif msg_type == messages.ATTACH:
            instance = self._instance_for_invocation(message.get("token", ""))
            instance.note_peer(framed)
            log = _obs.log
            if log is not None:
                log.instant("core.attach", self.sim.now,
                            track=self.relay.nickname,
                            instance=instance.instance_id)
            framed.send_frame(messages.encode_message(messages.LOADED, ok=True))
        elif msg_type == messages.SHUTDOWN:
            self._handle_shutdown(framed, message)
        elif msg_type == messages.CHECKPOINT:
            self._handle_checkpoint(framed, message)
        elif msg_type == messages.RESTORE:
            self._handle_restore(framed, message)
        else:
            framed.send_frame(messages.error_message(
                "unexpected-type", detail=msg_type))

    # -- handlers ---------------------------------------------------------------

    def _handle_request_image(self, thread: Actor, framed: FramedStream,
                              message: dict):
        log = _obs.log
        span = log.begin_span(
            "core.request_image", self.sim.now, track=self.relay.nickname,
            image=message.get("image", "python")) if log is not None else None
        try:
            yield from self._request_image(thread, framed, message, span)
        except BaseException as exc:
            if span is not None:
                span.end(self.sim.now, ok=False, error=type(exc).__name__)
            raise

    def _request_image(self, thread: Actor, framed: FramedStream,
                       message: dict, span=None):
        name = message.get("image", "python")
        image = self._image_cache.get(name)
        if image is not None:
            _HIT_IMAGE.value += 1
        else:
            _MISS_IMAGE.value += 1
            image = image_by_name(name)
            if image.name not in self.policy.offered_images:
                raise ImageUnavailable(f"operator does not offer {image.name}")
            self._image_cache[name] = image
        qos_key = None
        if self.qos is not None:
            # The serving plane replaces the blunt container-limit error:
            # it queues, paces, or refuses with a structured retry_after
            # (and may demand a puzzle under shed pressure).
            qos_key = yield from self.qos.admit_request(thread, framed,
                                                        message)
        elif len(self._by_invocation) >= self.policy.max_containers:
            raise BentoError("container limit reached")
        try:
            yield from self._start_instance(thread, framed, message, image,
                                            qos_key, span)
        except BaseException:
            # Give the slot back unless a registered instance already owns
            # it (setup got as far as registration and failed on the
            # reply; the instance's own teardown will release it).
            if qos_key is not None and not any(
                    inst.qos_key == qos_key
                    for inst in self._by_invocation.values()):
                self.qos.release(qos_key)
            raise

    def _start_instance(self, thread: Actor, framed: FramedStream,
                        message: dict, image: ContainerImage,
                        qos_key, span=None):
        container = Container(
            container_id=f"c{next(self._container_ids)}",
            host_fs=self.host_fs,
            parent_cgroup=self.root_cgroup,
            seccomp=SeccompPolicy(self.policy.allowed_syscalls),
            iptables=IptablesRuleset.from_exit_policy(
                self.relay.exit_policy, self.node.address,
                loopback_ports=(self.port,)),
            memory_limit=self.policy.max_function_memory + image.base_memory,
            disk_limit=self.policy.max_function_disk,
        )
        container.start(base_memory=image.base_memory)

        conclave = None
        reply_fields: dict = {}
        if image.uses_enclave:
            if self.enclave_host is None or self.ias is None:
                container.kill("no SGX support")
                raise ImageUnavailable("operator lacks SGX support")
            conclave = Conclave(self.enclave_host, image.enclave_image,
                                container.fs, self.rng.fork("conclave"),
                                heap_bytes=image.base_memory)
            enclave_pub = conclave.begin_channel()
            quote = conclave.quote_for_channel(enclave_pub)
            # Staple the IAS report, like OCSP stapling (§5.4): one WAN
            # round trip to Intel, paid by the server, not the client.
            yield Sleep(2.0 * self.ias.latency_s)
            report = self.ias.verify_quote(quote, now=self.sim.now)
            reply_fields.update({
                "quote": quote.to_wire(),
                "report": report.to_wire(),
                "enclave_pub": enclave_pub,
                "measurement": conclave.measurement,
            })

        tokens = self._tokens.issue()
        instance = FunctionInstance(self, image, container, conclave, tokens)
        instance.note_peer(framed)
        if self.qos is not None and qos_key is not None:
            self.qos.attach_instance(qos_key, instance)
        self._by_invocation[tokens.invocation] = instance
        self._by_shutdown[tokens.shutdown] = instance
        if span is not None:
            span.end(self.sim.now, ok=True, instance=instance.instance_id,
                     enclave=image.uses_enclave)
        framed.send_frame(messages.encode_message(
            messages.IMAGE_READY,
            container_id=instance.instance_id,
            invocation=tokens.invocation,
            shutdown=tokens.shutdown,
            image=image.name,
            **reply_fields))

    def _handle_load(self, framed: FramedStream, message: dict) -> None:
        log = _obs.log
        span = log.begin_span(
            "core.load_function", self.sim.now,
            track=self.relay.nickname) if log is not None else None
        try:
            self._load_function(framed, message, span)
        except ManifestRejected as exc:
            _metrics.counter("manifests_rejected").value += 1
            if log is not None:
                log.instant("core.manifest_rejected", self.sim.now,
                            track=self.relay.nickname, reason=str(exc))
            if span is not None:
                span.end(self.sim.now, ok=False, error="ManifestRejected")
            raise
        except BaseException as exc:
            if span is not None:
                span.end(self.sim.now, ok=False, error=type(exc).__name__)
            raise

    def _load_function(self, framed: FramedStream, message: dict,
                       span=None) -> None:
        instance = self._instance_for_invocation(message.get("token", ""))
        instance.note_peer(framed)
        # Accepted manifests are cached by their canonical wire bytes:
        # a hit skips both the parse and the policy verdict (manifests
        # are frozen, so the object is shared safely across instances).
        # Rejections are never cached — they must re-raise fresh.
        manifest_key = canonical_encode(message["manifest"])
        manifest = self._manifest_cache.get(manifest_key)
        if manifest is not None:
            _HIT_POLICY.value += 1
        else:
            _MISS_POLICY.value += 1
            manifest = FunctionManifest.from_wire(message["manifest"])
            reason = self.policy.rejection_reason(manifest)
            if reason is not None:
                raise ManifestRejected(reason)
            self._manifest_cache[manifest_key] = manifest
        if manifest.image != instance.image.name:
            raise ManifestRejected(
                f"manifest image {manifest.image!r} does not match container "
                f"image {instance.image.name!r}")
        if self.qos is not None:
            # Price the declared ask against the capacity ledger before
            # any real resources are committed; also registers the
            # instance's fair-queue flows under its priority class.
            self.qos.price_manifest(instance, manifest)

        if "sealed_code" in message:
            if instance.conclave is None:
                raise BentoError("sealed upload requires the enclave image")
            channel = instance.conclave.complete_channel(message["client_pub"])
            code = channel.open(message["sealed_code"]).decode("utf-8")
        else:
            code = message["code"]

        instance.load(code, manifest)
        for path, data in dict(message.get("data", {})).items():
            # Initial data files ride along with the upload (§5.4: "the
            # Bento client then uploads the function, and any associated
            # data to copy to FS Protect").
            fs = (instance.conclave.fs if instance.conclave is not None
                  else instance.container.fs)
            instance.container.cgroup.charge("disk", len(data))
            fs.write_file(path, data)
        if span is not None:
            span.end(self.sim.now, ok=True, instance=instance.instance_id,
                     name=manifest.name)
        framed.send_frame(messages.encode_message(messages.LOADED, ok=True))

    def _handle_shutdown(self, framed: FramedStream, message: dict) -> None:
        token = message.get("token", "")
        instance = self._by_shutdown.get(token)
        if instance is None:
            moved_to = self._moved.get(token)
            if moved_to is not None:
                raise FunctionMoved("function migrated to another box",
                                    box_fp=moved_to)
            raise TokenInvalid("unknown shutdown token")
        instance.note_peer(framed)
        instance.kill("shutdown by owner")
        framed.send_frame(messages.encode_message(messages.SHUTDOWN_OK))

    def _handle_checkpoint(self, framed: FramedStream, message: dict) -> None:
        """Snapshot a checkpointable function for its owner.

        Gated on the *shutdown* token: the checkpoint carries the
        function's full state, so only the owner capability (not the
        shareable invocation token) may take one.  Inside a conclave the
        reply travels sealed under the attested channel — the host never
        sees plaintext state (§5.4)."""
        from repro.migrate import checkpoint_instance, store_local_checkpoint

        token = message.get("token", "")
        instance = self._by_shutdown.get(token)
        if instance is None:
            moved_to = self._moved.get(token)
            if moved_to is not None:
                raise FunctionMoved("function migrated to another box",
                                    box_fp=moved_to)
            raise TokenInvalid("unknown shutdown token")
        instance.note_peer(framed)
        cp = checkpoint_instance(instance, seq=int(message.get("seq", 0)))
        reply: dict = {"ok": True, "seq": cp.seq}
        if instance.conclave is not None:
            store_local_checkpoint(instance, cp)
            channel = instance.conclave.channel
            if channel is None:
                raise BentoError("no attested channel to seal checkpoint for")
            reply["sealed_checkpoint"] = channel.seal(
                canonical_encode(cp.to_wire()))
        else:
            reply["checkpoint"] = cp.to_wire()
        framed.send_frame(messages.encode_message(
            messages.CHECKPOINT_DATA, **reply))

    def _handle_restore(self, framed: FramedStream, message: dict) -> None:
        """Apply a checkpoint to a freshly loaded instance.

        Sent by the migration plane (or a standby's owner) right after
        ``load_function`` on the destination box.  May also adopt the
        source instance's token pair so existing capability holders keep
        working after the move."""
        from repro.migrate import Checkpoint, restore_instance
        from repro.util.serialization import canonical_decode

        instance = self._instance_for_invocation(message.get("token", ""))
        instance.note_peer(framed)
        if "sealed_checkpoint" in message:
            if instance.conclave is None or instance.conclave.channel is None:
                raise BentoError(
                    "sealed restore requires an attested enclave channel")
            wire = canonical_decode(
                instance.conclave.channel.open(message["sealed_checkpoint"]))
            cp = Checkpoint.from_wire(wire)
        elif "checkpoint" in message:
            cp = Checkpoint.from_wire(message["checkpoint"])
        else:
            cp = None
        restore_instance(instance, cp, framed,
                         start=bool(message.get("start", False)))
        adopt_inv = message.get("adopt_invocation", "")
        adopt_sd = message.get("adopt_shutdown", "")
        if adopt_inv or adopt_sd:
            self._adopt_tokens(instance, adopt_inv, adopt_sd)
        framed.send_frame(messages.encode_message(
            messages.RESTORED, ok=True,
            invocation=instance.tokens.invocation,
            shutdown=instance.tokens.shutdown))

    def _adopt_tokens(self, instance: FunctionInstance, invocation: str,
                      shutdown: str) -> None:
        """Re-key an instance under tokens minted by another box.

        Existing holders of the source instance's capabilities (sessions,
        shared invocation tokens) keep working against the destination
        without redistribution.  Refuses tokens already registered here —
        adoption must never hijack a live instance."""
        for token in (invocation, shutdown):
            if token in self._by_invocation or token in self._by_shutdown:
                raise TokenInvalid("adopted token collides with a live one")
        self._by_invocation.pop(instance.tokens.invocation, None)
        self._by_shutdown.pop(instance.tokens.shutdown, None)
        instance.tokens = TokenPair(
            invocation=invocation or instance.tokens.invocation,
            shutdown=shutdown or instance.tokens.shutdown)
        self._by_invocation[instance.tokens.invocation] = instance
        self._by_shutdown[instance.tokens.shutdown] = instance

    # -- registry -----------------------------------------------------------------

    def _instance_for_invocation(self, token: str) -> FunctionInstance:
        instance = self._by_invocation.get(token)
        if instance is None:
            moved_to = self._moved.get(token)
            if moved_to is not None:
                raise FunctionMoved("function migrated to another box",
                                    box_fp=moved_to)
            raise TokenInvalid("unknown invocation token")
        return instance

    def _forget(self, instance: FunctionInstance) -> None:
        self._by_invocation.pop(instance.tokens.invocation, None)
        self._by_shutdown.pop(instance.tokens.shutdown, None)
        if self.qos is not None and instance.qos_key is not None:
            # Free the admission slot (waking the best queued waiter) and
            # return the priced reservation to the capacity ledger.
            self.qos.release(instance.qos_key)
            instance.qos_key = None

    # -- failure handling -------------------------------------------------------

    def reap_orphans(self, grace_s: Optional[float] = None) -> int:
        """Kill instances whose every client transport died (§5.3 allows a
        function to outlive its connection, but a box need not host
        abandoned ones forever).  ``grace_s`` defaults to the server's
        ``orphan_grace_s`` (or 0): instances touched more recently than
        that are spared.  Returns how many were reaped."""
        if grace_s is None:
            grace_s = self.orphan_grace_s or 0.0
        horizon = self.sim.now - grace_s
        reaped = 0
        for instance in list(self._by_invocation.values()):
            if instance.orphaned and instance.last_activity <= horizon:
                instance.kill("orphaned: all client connections died")
                reaped += 1
        _perf.orphans_reaped += reaped
        return reaped

    def _on_node_crash(self, _node) -> None:
        """The host died: every hosted function dies with it.

        No graceful cleanup — a crashed box gets no dying gasp on the
        network."""
        for instance in list(self._by_invocation.values()):
            instance.kill("box crashed", graceful=False)
        # A restarted box has lost all state; nothing cached may survive
        # into its next life.
        self._image_cache.clear()
        self._manifest_cache.clear()
        self._moved.clear()
        if self.qos is not None:
            # A dead box cannot serve; stop advertising room it no longer
            # has (a stale report would just make it look busy anyway).
            self.directory.withdraw_load(self.relay.fingerprint)

    # -- introspection ----------------------------------------------------------------

    @property
    def active_function_count(self) -> int:
        """Live function instances on this server."""
        return len(self._by_invocation)

    @property
    def total_memory_used(self) -> int:
        """Aggregate memory charged across all containers."""
        return self.root_cgroup.usage["memory"]
