"""The function API surface and its syscall footprint.

One table drives three enforcement points: middlebox node policies and
manifests are boolean vectors over :data:`ALL_API_CALLS`; the container's
seccomp filter checks :data:`API_SYSCALLS` before each call proceeds.
"""

from __future__ import annotations

from repro.stemlib.firewall import STEM_ROUTINES

_NET = ("socket", "connect", "sendto", "recvfrom")
_LOCAL_SOCKET = ("socket", "connect", "sendto", "recvfrom")   # firewall socket

# api call -> syscalls it needs.
API_SYSCALLS: dict[str, tuple[str, ...]] = {
    "send": ("write",),
    "recv": ("read",),
    "log": ("write",),
    "sleep": ("nanosleep",),
    "time": ("clock_gettime",),
    "random": ("getrandom",),
    "http_get": _NET,
    "connect": _NET,
    "storage.put": ("open", "write"),
    "storage.get": ("open", "read"),
    "storage.list": ("open", "read"),
    "storage.delete": ("unlink",),
    "deploy": _NET,
    "remote_invoke": _NET,
    "remote_send": _NET,
    "remote_recv": _NET,
    "remote_shutdown": _NET,
}
API_SYSCALLS.update({f"stem.{routine}": _LOCAL_SOCKET for routine in STEM_ROUTINES})

ALL_API_CALLS = frozenset(API_SYSCALLS)


def syscalls_for(api_calls) -> frozenset[str]:
    """The syscall set a manifest requesting ``api_calls`` needs."""
    needed: set[str] = set()
    for call in api_calls:
        try:
            needed.update(API_SYSCALLS[call])
        except KeyError:
            raise ValueError(f"unknown api call: {call}") from None
    return frozenset(needed)
