"""The ``api`` object: everything a Bento function can do.

Functions are arbitrary Python, but their *only* capability is this object
(§5.1: "they are constrained to a limited API, and run in a restricted
sandbox").  Every method:

1. checks the call is in the function's **manifest** (the sandbox is
   constrained to the manifest even when the operator's policy allows
   more, §5.5),
2. checks the syscalls it maps to against the container's **seccomp**
   filter,
3. checks destinations against the container's **iptables** rules,
4. charges the container's **cgroup**, and
5. pays the **enclave transition cost** when running in a conclave.

A function killed by the sandbox (or shut down by its owner) sees
:class:`FunctionKilled` from its next API call.

Blocking API methods are written as generators (the task-kernel style):
coroutine function code delegates to them with ``yield from``, while
legacy plain-callable functions keep calling them synchronously — the
:func:`_api_blocking` dispatcher resolves the executing actor from the
api's own context (the current :class:`SimTask`, or the sim-thread bound
via thread-local state) because sandboxed code calls ``api.recv()`` with
no thread argument in sight.
"""

from __future__ import annotations

import functools
import threading
from types import GeneratorType
from typing import Any, Callable, Optional

from repro.core.apispec import API_SYSCALLS
from repro.core.errors import BentoError
from repro.netsim.bytestream import DirectByteStream
from repro.netsim.http import HttpResponse, http_get
from repro.netsim.simulator import (
    Actor,
    Future,
    Join,
    Sleep,
    SimTask,
    SimThread,
    Wait,
    _drive_blocking,
    _drive_inline,
)
from repro.obs.span import TRACER as _obs
from repro.sandbox.seccomp import SeccompViolation
from repro.util.errors import ReproError


class ApiError(BentoError):
    """Misuse of the function API (bad arguments, unknown handle, ...)."""


#: Nominal cpu milliseconds metered per gated API call when the serving
#: plane is on; the weighted-fair cpu queue paces flows by this currency.
_QOS_CALL_COST_MS = 1.0


class FunctionKilled(ReproError):
    """The sandbox or the owner terminated this function."""


def _api_blocking(fn: Callable) -> Callable:
    """Context-dispatched :func:`repro.netsim.simulator.blocking`.

    API methods take no actor argument — sandboxed code just calls
    ``api.recv()`` — so the dispatcher asks the api object which actor is
    executing: the simulator's current :class:`SimTask` (coroutine
    functions), the sim-thread bound in thread-local state (legacy
    functions), or nothing at all (event-handler context, where the
    generator runs inline and must not suspend).
    """

    @functools.wraps(fn)
    def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
        gen = fn(self, *args, **kwargs)
        actor = getattr(self, "_api", self)._thread
        if actor is None:
            return _drive_inline(gen)
        if isinstance(actor, SimThread) and not actor._driving:
            return _drive_blocking(actor, gen)
        return gen

    wrapper._blocking_inner = fn
    return wrapper


class SandboxedStream:
    """A byte stream handed to a function, gated and byte-accounted.

    Wraps direct connections (gate ``connect``) and hidden-service streams
    (gate ``stem.create_hidden_service``) alike.
    """

    def __init__(self, api: "FunctionApi", stream,
                 gate: str = "connect") -> None:
        self._api = api
        self._stream = stream
        self._gate_name = gate

    @_api_blocking
    def send(self, data: bytes) -> None:
        """Send bytes to the peer."""
        yield from self._api._gate(self._gate_name)
        yield from self._api._charge_network(len(data))
        self._stream.send(data)

    @_api_blocking
    def recv(self, timeout: Optional[float] = None) -> bytes:
        """Block until the next chunk arrives; b'' at EOF."""
        yield from self._api._gate(self._gate_name)
        data = yield from self._stream.recv(self._api._thread, timeout=timeout)
        yield from self._api._charge_network(len(data))
        return data

    def close(self) -> None:
        """Close the stream/connection."""
        self._stream.close()


class HttpSessionApi:
    """``api.http_session(...)``: keep-alive GETs over one connection."""

    def __init__(self, api: "FunctionApi", framed) -> None:
        self._api = api
        self._framed = framed

    @_api_blocking
    def get(self, path: str, timeout: float = 600.0) -> HttpResponse:
        """One GET on the persistent connection."""
        yield from self._api._gate("http_get")
        from repro.netsim.http import fetch

        response = yield from fetch(self._api._thread, self._framed, path,
                                    timeout=timeout)
        yield from self._api._charge_network(len(response.body))
        return response

    def close(self) -> None:
        """Close the stream/connection."""
        self._framed.close()


class StorageApi:
    """``api.storage``: the chrooted (and, in a conclave, encrypted) store."""

    def __init__(self, api: "FunctionApi") -> None:
        self._api = api

    def _fs(self):
        instance = self._api._instance
        if instance.conclave is not None:
            return instance.conclave.fs
        return instance.container.fs

    @_api_blocking
    def put(self, path: str, data: bytes) -> None:
        """Write a file (charged against the disk quota)."""
        yield from self._api._gate("storage.put")
        instance = self._api._instance
        fs = self._fs()
        current = 0
        if fs.exists(path):
            current = fs.file_size(path)
        delta = len(data) - current
        if delta > 0:
            instance.container.cgroup.charge("disk", delta)
        fs.write_file(path, bytes(data))
        if delta < 0:
            instance.container.cgroup.charge("disk", delta)

    @_api_blocking
    def get(self, path: str) -> bytes:
        """Read a file."""
        yield from self._api._gate("storage.get")
        return self._fs().read_file(path)

    @_api_blocking
    def list(self, path: str = "/") -> list[str]:
        """All file paths under ``path``."""
        yield from self._api._gate("storage.list")
        return self._fs().walk_files(path)

    @_api_blocking
    def delete(self, path: str) -> None:
        """Remove a file (releases quota)."""
        yield from self._api._gate("storage.delete")
        instance = self._api._instance
        fs = self._fs()
        size = fs.file_size(path) if fs.exists(path) else 0
        fs.delete(path)
        if size:
            instance.container.cgroup.charge("disk", -size)

    @_api_blocking
    def exists(self, path: str) -> bool:
        """Does a file exist?  (Gated as a read.)"""
        yield from self._api._gate("storage.get")
        return self._fs().exists(path)


class StemApi:
    """``api.stem``: the firewall-mediated controller (§5.3)."""

    def __init__(self, api: "FunctionApi") -> None:
        self._api = api

    def _firewall(self):
        return self._api._instance.firewall

    @_api_blocking
    def new_circuit(self, **kwargs) -> str:
        """Mediated :meth:`Controller.new_circuit`."""
        yield from self._api._gate("stem.new_circuit")
        return (yield from self._firewall().new_circuit(
            self._api._thread, **kwargs))

    @_api_blocking
    def close_circuit(self, circuit_id: str) -> None:
        """Mediated circuit teardown (ownership enforced)."""
        yield from self._api._gate("stem.close_circuit")
        self._firewall().close_circuit(circuit_id)

    @_api_blocking
    def attach_stream(self, circuit_id: str, host: str, port: int):
        """Mediated stream attach (ownership enforced)."""
        yield from self._api._gate("stem.attach_stream")
        return (yield from self._firewall().attach_stream(
            self._api._thread, circuit_id, host, port))

    @_api_blocking
    def get_network_statuses(self):
        """Mediated consensus listing."""
        yield from self._api._gate("stem.get_network_statuses")
        return self._firewall().get_network_statuses()

    @_api_blocking
    def get_info(self, key: str):
        """Mediated GETINFO."""
        yield from self._api._gate("stem.get_info")
        return self._firewall().get_info(key)

    @_api_blocking
    def create_hidden_service(self, handler, n_intro: int = 3,
                              key_material: Optional[dict] = None,
                              establish: bool = True,
                              manual_introductions: bool = False):
        """Host a hidden service.  ``handler(stream, host, port)`` runs in
        its own actor per accepted stream, with the stream gated and
        byte-accounted like any other function I/O.

        ``key_material`` (from ``service.export_key_material()``) clones an
        existing service identity; ``establish=False`` makes a detached
        replica endpoint; ``manual_introductions=True`` queues
        introductions for :meth:`wait_introduction`.
        """
        yield from self._api._gate("stem.create_hidden_service")
        api = self._api
        sim = api._instance.server.sim

        wrapped = None
        if handler is not None:
            import inspect as _inspect
            handler_is_task = _inspect.isgeneratorfunction(handler)

            def wrapped(stream, host, port):  # noqa: ANN001 - duck-typed
                """Per-stream wrapper: serve each accepted stream in an actor."""
                sandboxed = SandboxedStream(
                    api, stream, gate="stem.create_hidden_service")
                if handler_is_task:
                    def _serve(task):
                        api._bind(task, None)
                        try:
                            yield from handler(sandboxed, host, port)
                        finally:
                            api._unbind(task)
                else:
                    def _serve(thread):
                        api._bind(thread, None)
                        handler(sandboxed, host, port)
                sim.spawn(_serve, name=f"fn-hs:{api._instance.instance_id}")

        keypair = None
        if key_material is not None:
            from repro.crypto.rsa import RsaKeyPair
            keypair = RsaKeyPair.from_parts(key_material)
        return (yield from self._firewall().create_hidden_service(
            self._api._thread, wrapped, n_intro=n_intro, keypair=keypair,
            establish=establish, manual_introductions=manual_introductions))

    @_api_blocking
    def wait_introduction(self, service, timeout: Optional[float] = None) -> dict:
        """Next queued introduction on a manual-mode service."""
        yield from self._api._gate("stem.hs_wait_introduction")
        return (yield from self._firewall().hs_wait_introduction(
            self._api._thread, service, timeout=timeout))

    @_api_blocking
    def complete_rendezvous(self, service, request: dict, wait: bool = True):
        """Answer one introduction from this node (LoadBalancer replicas).

        ``wait=False`` runs the rendezvous-circuit construction in its own
        actor so a dispatcher can keep serving other clients — the same
        concurrency an unmodified hidden service gets for free.
        """
        yield from self._api._gate("stem.hs_complete_rendezvous")
        if wait:
            return (yield from self._firewall().hs_complete_rendezvous(
                self._api._thread, service, request))
        api = self._api
        firewall = self._firewall()
        sim = api._instance.server.sim

        def _worker(task):
            from repro.netsim.connection import ConnectionClosed
            from repro.netsim.network import NetworkError
            from repro.netsim.simulator import SimTimeoutError
            from repro.tor.circuit import CircuitDestroyed
            from repro.tor.client import TorError

            api._bind(task, None)
            try:
                yield from firewall.hs_complete_rendezvous(task, service,
                                                           request)
            except (TorError, NetworkError, SimTimeoutError,
                    CircuitDestroyed, ConnectionClosed) as exc:
                # Fire-and-forget: the client retries through a fresh
                # rendezvous; a dead relay here must not kill the host.
                api._instance.logs.append(
                    f"rendezvous abandoned: {exc}")
            finally:
                api._unbind(task)

        sim.spawn(_worker, name=f"rend:{api._instance.instance_id}")
        return None

    @_api_blocking
    def remove_hidden_service(self, onion_address: str) -> None:
        """Mediated hidden-service removal (ownership enforced)."""
        yield from self._api._gate("stem.remove_hidden_service")
        self._firewall().remove_hidden_service(onion_address)

    @_api_blocking
    def connect_to_hidden_service(self, onion_address: str):
        """Mediated client-side rendezvous."""
        yield from self._api._gate("stem.connect_to_hidden_service")
        return (yield from self._firewall().connect_to_hidden_service(
            self._api._thread, onion_address))

    @_api_blocking
    def send_padding(self, circuit_id: str, hop_index: Optional[int] = None,
                     payload: bytes = b"") -> None:
        """Mediated RELAY_DROP injection (ownership enforced)."""
        yield from self._api._gate("stem.send_padding")
        self._firewall().send_padding(circuit_id, hop_index=hop_index,
                                      payload=payload)

    @_api_blocking
    def fetch(self, circuit_id: str, url: str, offset: Optional[int] = None,
              length: Optional[int] = None, timeout: float = 600.0) -> dict:
        """An HTTP(S) GET (optionally ranged) through an owned circuit."""
        yield from self._api._gate("stem.fetch")
        return (yield from self._firewall().fetch(
            self._api._thread, circuit_id, url, offset=offset, length=length,
            timeout=timeout))

    @_api_blocking
    def fetch_begin(self, circuit_id: str, url: str,
                    offset: Optional[int] = None,
                    length: Optional[int] = None,
                    timeout: float = 600.0):
        """Start a fetch without blocking; join with :meth:`fetch_join`.

        This is how the multipath function overlaps transfers on several
        circuits from single-threaded function code.
        """
        yield from self._api._gate("stem.fetch")
        api = self._api
        firewall = self._firewall()
        sim = api._instance.server.sim

        def _worker(task):
            api._bind(task, None)
            try:
                return (yield from firewall.fetch(
                    task, circuit_id, url, offset=offset, length=length,
                    timeout=timeout))
            finally:
                api._unbind(task)

        return sim.spawn(_worker, name=f"fetch:{api._instance.instance_id}")

    @_api_blocking
    def fetch_join(self, handle, timeout: float = 600.0) -> dict:
        """Wait for a :meth:`fetch_begin` transfer and return its result."""
        yield from self._api._gate("stem.fetch")
        return (yield Join(handle, timeout))


class FunctionApi:
    """The capability object injected into every function's namespace."""

    def __init__(self, instance) -> None:
        self._instance = instance
        # Per-actor state.  Legacy sim-threads bind themselves in
        # thread-local storage (each is a real OS thread); coroutine tasks
        # all share one OS thread, so their context lives in a dict keyed
        # by task, populated by _bind and cleared by _unbind.
        self._tls = threading.local()
        self._task_peer: dict[SimTask, Any] = {}
        self._inbox: list[tuple[bytes, Any]] = []
        self._recv_waiter: Optional[Future] = None
        self._undelivered: list[bytes] = []
        self._killed = False
        self._kill_reason = ""
        self.call_log: list[str] = []
        self.storage = StorageApi(self)
        self.stem = StemApi(self)
        self._remote_sessions: dict[str, Any] = {}
        self._remote_ids = 0

    # -- runtime plumbing (not callable by functions through the namespace,
    #    but Python has no private: "we are all responsible users") ----------

    @property
    def _thread(self) -> Optional[Actor]:
        task = self._instance.server.sim._current_task
        if task is not None:
            return task
        return getattr(self._tls, "thread", None)

    @property
    def _current_peer(self):
        task = self._instance.server.sim._current_task
        if task is not None:
            return self._task_peer.get(task)
        return getattr(self._tls, "peer", None)

    @_current_peer.setter
    def _current_peer(self, peer) -> None:
        task = self._instance.server.sim._current_task
        if task is not None:
            self._task_peer[task] = peer
        else:
            self._tls.peer = peer

    def _bind(self, actor: Actor, peer) -> None:
        if isinstance(actor, SimTask):
            self._task_peer[actor] = peer
        else:
            self._tls.thread = actor
            self._tls.peer = peer

    def _unbind(self, actor: Actor) -> None:
        """Release a task's context entry (tasks outnumber OS threads by
        orders of magnitude at scale; the dict must not grow unboundedly)."""
        if isinstance(actor, SimTask):
            self._task_peer.pop(actor, None)

    def _push_message(self, payload: bytes, peer) -> None:
        self._inbox.append((payload, peer))
        if self._instance.draining:
            # Quiesce: queue the message but leave recv() parked so the
            # function's state stays frozen for the checkpoint.  Queued
            # messages ship with (or chase) the checkpoint to the new box.
            return
        if self._recv_waiter is not None and not self._recv_waiter.done:
            self._recv_waiter.resolve(None)

    def _kill(self, reason: str) -> None:
        self._killed = True
        self._kill_reason = reason
        if self._recv_waiter is not None and not self._recv_waiter.done:
            self._recv_waiter.reject(FunctionKilled(reason))

    def _gate(self, call_name: str):
        """The enforcement choke point every API call passes through."""
        if self._killed:
            raise FunctionKilled(self._kill_reason or "function terminated")
        instance = self._instance
        self.call_log.append(call_name)
        if call_name not in instance.manifest.api_calls:
            instance.kill(f"api call {call_name!r} not in manifest")
            raise FunctionKilled(f"api call {call_name!r} not in manifest")
        try:
            instance.container.seccomp.check_all(
                API_SYSCALLS[call_name], context=call_name)
        except SeccompViolation as exc:
            instance.kill(str(exc))
            raise FunctionKilled(str(exc)) from exc
        if instance.conclave is not None and self._thread is not None:
            cost = instance.conclave.invoke_cost()
            if cost > 0:
                yield Sleep(cost)
        plane = instance.server.qos
        if plane is not None:
            # Meter this call against the instance's weighted-fair cpu
            # share; the plane sleeps out any pacing delay right here, at
            # the gate — never on the per-byte transfer path.
            paced = plane.charge_cpu(self._thread, instance,
                                     _QOS_CALL_COST_MS)
            if isinstance(paced, GeneratorType):
                yield from paced

    def _charge_network(self, nbytes: int):
        """Byte-account one transfer: cgroup charge plus fair-share pacing."""
        instance = self._instance
        instance.container.charge_network(nbytes)
        plane = instance.server.qos
        if plane is not None:
            paced = plane.charge_net(self._thread, instance, nbytes)
            if isinstance(paced, GeneratorType):
                yield from paced

    # -- talking to the client ----------------------------------------------

    @_api_blocking
    def send(self, payload: bytes) -> None:
        """Deliver bytes to the client who sent the message being handled."""
        yield from self._gate("send")
        from repro.core import messages  # late import avoids a cycle

        peer = self._current_peer
        if peer is None:
            raise ApiError("no client attached to send to")
        yield from self._charge_network(len(payload))
        frame = messages.encode_message(
            messages.OUTPUT, payload=bytes(payload))
        try:
            peer.send_frame(frame)
        except Exception:
            # Client went away; outputs are best-effort — but keep a
            # bounded tail so a graceful drain can flush them to the
            # owner's live connection instead of dropping them.
            self._undelivered.append(frame)
            del self._undelivered[:-64]

    def _flush_undelivered(self, peer) -> int:
        """Replay queued outputs to a (live) peer; returns how many landed."""
        flushed = 0
        while self._undelivered:
            frame = self._undelivered[0]
            try:
                peer.send_frame(frame)
            except Exception:
                break
            self._undelivered.pop(0)
            flushed += 1
        return flushed

    @_api_blocking
    def recv(self, timeout: Optional[float] = None) -> bytes:
        """Block until the next client message arrives."""
        yield from self._gate("recv")
        while not self._inbox:
            self._recv_waiter = Future(self._instance.server.sim)
            yield Wait(self._recv_waiter, timeout)
            self._recv_waiter = None
        payload, peer = self._inbox.pop(0)
        self._current_peer = peer
        return payload

    @_api_blocking
    def log(self, message: str) -> None:
        """Append to the function's log (visible to the function owner)."""
        yield from self._gate("log")
        self._instance.logs.append(f"[{self._instance.server.sim.now:.3f}] {message}")

    # -- time and randomness -----------------------------------------------------

    @_api_blocking
    def sleep(self, duration: float) -> None:
        """Sleep in simulated time."""
        yield from self._gate("sleep")
        yield Sleep(duration)

    @_api_blocking
    def time(self) -> float:
        """The current simulated time."""
        yield from self._gate("time")
        return self._instance.server.sim.now

    @_api_blocking
    def random_bytes(self, n: int) -> bytes:
        """Cryptographically-styled random bytes (deterministic per run)."""
        yield from self._gate("random")
        return self._instance.rng.randbytes(n)

    # -- direct network access (the exit path) ---------------------------------------

    @_api_blocking
    def http_get(self, url: str, timeout: float = 600.0) -> HttpResponse:
        """Fetch a URL directly from this Bento box (like ``requests.get``)."""
        yield from self._gate("http_get")
        instance = self._instance
        from repro.netsim.http import parse_url

        parsed = parse_url(url)
        address = instance.server.network.resolve(parsed.host)
        instance.container.iptables.check(address, parsed.port)
        response = yield from http_get(self._thread, instance.server.network,
                                       instance.server.node, url,
                                       timeout=timeout)
        yield from self._charge_network(len(response.body))
        return response

    @_api_blocking
    def http_session(self, host: str, port: int = 443,
                     timeout: float = 60.0) -> "HttpSessionApi":
        """A keep-alive HTTP session to one origin (like requests.Session).

        One connection, many GETs — what a real web client does when
        crawling a page's subresources.
        """
        yield from self._gate("http_get")
        instance = self._instance
        address = instance.server.network.resolve(host)
        instance.container.iptables.check(address, port)
        conn = yield from instance.server.network.connect_blocking(
            self._thread, instance.server.node, address, port,
            handshake_rtts=2.0 if port == 443 else 1.0, timeout=timeout)
        from repro.netsim.bytestream import FramedStream

        framed = FramedStream(DirectByteStream(conn, instance.server.node))
        return HttpSessionApi(self, framed)

    @_api_blocking
    def connect(self, host: str, port: int,
                timeout: float = 60.0) -> SandboxedStream:
        """Open a raw (direct) connection, subject to iptables rules."""
        yield from self._gate("connect")
        instance = self._instance
        address = instance.server.network.resolve(host)
        instance.container.iptables.check(address, port)
        conn = yield from instance.server.network.connect_blocking(
            self._thread, instance.server.node, address, port,
            timeout=timeout)
        return SandboxedStream(self, DirectByteStream(conn, instance.server.node))

    # -- composition: deploying functions on other Bento boxes (§3) --------------------

    @_api_blocking
    def deploy(self, code: str, manifest_wire: dict,
               target_fingerprint: Optional[str] = None,
               exclude_fingerprints: Optional[list] = None,
               direct: bool = False,
               prefer_slack: bool = False,
               timeout: float = 240.0) -> str:
        """Install a function on *another* Bento box; returns a handle.

        This is the primitive behind Figure 2 (Browser deploying Dropbox).
        The connection to the remote box runs over a fresh Tor circuit by
        default; ``direct=True`` dials the box's Bento port straight over
        the network — no anonymity, but full bandwidth — for deployments
        onto infrastructure the function's owner already controls (the
        LoadBalancer pushing content to its own replicas, as the paper's
        EC2 deployment did).

        ``prefer_slack=True`` consults the directory's serving-plane load
        reports and places on the box advertising the most room, falling
        back to the uniform random pick when no box has advertised yet
        (which also keeps the RNG stream — and thus fixed-seed replays —
        unchanged on networks without the plane).
        """
        yield from self._gate("deploy")
        from repro.core.client import BentoClient
        from repro.core.manifest import FunctionManifest

        instance = self._instance
        client = BentoClient(instance.server.tor_client, instance.server.ias,
                             rng=instance.rng.fork(f"deploy{self._remote_ids}"))
        boxes = client.discover_boxes()
        boxes = [b for b in boxes
                 if b.identity_fp != instance.server.relay.fingerprint]
        if target_fingerprint is not None:
            boxes = [b for b in boxes if b.identity_fp == target_fingerprint]
        elif exclude_fingerprints:
            spread = [b for b in boxes
                      if b.identity_fp not in exclude_fingerprints]
            if spread:        # prefer unused boxes, fall back if exhausted
                boxes = spread
        if not boxes:
            raise ApiError("no eligible Bento box to deploy to")
        if target_fingerprint:
            box = boxes[0]
        else:
            box = None
            if prefer_slack:
                load_table = instance.server.directory.load_table()
                if load_table:
                    from repro.qos.placement import pick_box_by_slack
                    box = pick_box_by_slack(boxes, load_table)
            if box is None:
                box = instance.rng.choice(boxes)
        manifest = FunctionManifest.from_wire(manifest_wire)
        sim = instance.server.sim
        log = _obs.log
        span = log.begin_span(
            "functions.deploy", sim.now,
            track=instance.server.relay.nickname,
            source=instance.instance_id, target=box.nickname,
            function=manifest.name, direct=direct) if log is not None else None
        try:
            if direct:
                session = yield from client.connect_direct(self._thread, box,
                                                           timeout=timeout)
            else:
                session = yield from client.connect(self._thread, box,
                                                    timeout=timeout)
            yield from session.request_image(self._thread, manifest.image,
                                             timeout=timeout)
            yield from session.load_function(self._thread, code, manifest,
                                             timeout=timeout)
        except BaseException as exc:
            if span is not None:
                span.end(sim.now, ok=False, error=type(exc).__name__)
            raise
        self._remote_ids += 1
        handle = f"remote-{self._remote_ids}"
        self._remote_sessions[handle] = session
        if span is not None:
            span.end(sim.now, ok=True, handle=handle)
        return handle

    def _session(self, handle: str):
        try:
            return self._remote_sessions[handle]
        except KeyError:
            raise ApiError(f"unknown remote handle: {handle}") from None

    @_api_blocking
    def remote_invoke(self, handle: str, args: list,
                      timeout: float = 600.0) -> Any:
        """Invoke a deployed function and wait for its result."""
        yield from self._gate("remote_invoke")
        session = self._session(handle)
        return (yield from session.invoke(self._thread, args, timeout=timeout))

    @_api_blocking
    def remote_invoke_nowait(self, handle: str, args: list) -> None:
        """Start a deployed function without waiting for it to finish
        (for long-running loops like Dropbox)."""
        yield from self._gate("remote_invoke")
        self._session(handle).invoke_nowait(args)

    @_api_blocking
    def remote_send(self, handle: str, payload: bytes) -> None:
        """Send an in-band message to a deployed (running) function."""
        yield from self._gate("remote_send")
        self._session(handle).send_message(payload)

    @_api_blocking
    def remote_recv(self, handle: str, timeout: float = 600.0) -> bytes:
        """Receive the next output from a deployed function."""
        yield from self._gate("remote_recv")
        return (yield from self._session(handle).next_output(
            self._thread, timeout=timeout))

    @_api_blocking
    def remote_info(self, handle: str) -> dict:
        """Where a deployed function lives and how to reach it.

        The invocation token is a shareable capability (§5.3), so a
        function can hand these out — Shard returns them so the owner can
        fetch pieces directly from each Dropbox later.
        """
        yield from self._gate("deploy")
        session = self._session(handle)
        return {
            "box_fp": session.box.identity_fp if session.box else "",
            "box_nickname": session.box.nickname if session.box else "",
            "invocation": session.invocation_token,
        }

    @_api_blocking
    def remote_shutdown(self, handle: str, timeout: float = 120.0) -> None:
        """Shut a deployed function down (we hold its shutdown token)."""
        yield from self._gate("remote_shutdown")
        session = self._remote_sessions.pop(handle, None)
        if session is not None:
            yield from session.shutdown(self._thread, timeout=timeout)

    # -- introspection for the function itself ------------------------------------

    @property
    def invocation_token(self) -> str:
        """This function's own invocation token (shareable capability)."""
        return self._instance.tokens.invocation
