"""The Bento client: discovery, attestation, upload, invocation.

The flow of Figure 1: find a willing Bento box in the Tor directory, build
a circuit terminating at it, verify the box's attestation (stapled or by
asking the IAS directly), upload the function over the attested channel,
invoke it, and — eventually — spend the shutdown token.
"""

from __future__ import annotations

from types import GeneratorType
from typing import Any, Optional

from repro.core import messages
from repro.core.errors import (
    AttestationRejected,
    BentoError,
    FunctionMoved,
    PuzzleRequired,
    ServerBusy,
)
from repro.core.images import image_by_name, known_measurement
from repro.core.manifest import FunctionManifest
from repro.core.policy import MiddleboxNodePolicy
from repro.enclave.attestation import AttestationReport, Quote
from repro.enclave.conclave import Conclave, SecureChannel
from repro.enclave.attestation import IntelAttestationService
from repro.netsim.bytestream import FramedStream
from repro.netsim.connection import ConnectionClosed
from repro.netsim.network import NetworkError
from repro.netsim.simulator import Actor, Sleep, SimTimeoutError, blocking
from repro.obs.metrics import REGISTRY as _metrics
from repro.obs.span import TRACER as _obs
from repro.perf.counters import counters as _perf
from repro.tor.circuit import Circuit, CircuitDestroyed
from repro.tor.client import TorClient, TorError
from repro.tor.descriptor import RelayDescriptor
from repro.util.errors import ProtocolError
from repro.util.rng import DeterministicRandom

#: Failures worth retrying: transport death, timeouts, circuit teardown,
#: refused dials, and server-reported errors.  ``ConnectionError`` covers
#: application-level helpers (e.g. LoadBalancer downloads) that surface
#: mid-transfer hangups as the builtin.
RETRYABLE_ERRORS = (BentoError, ConnectionClosed, SimTimeoutError,
                    CircuitDestroyed, TorError, NetworkError, ProtocolError,
                    ConnectionError)

# Cached registry handles (the registry resets values in place).
_HIT_CIRCUIT = _metrics.counter("cache_hits", {"layer": "circuit"})
_MISS_CIRCUIT = _metrics.counter("cache_misses", {"layer": "circuit"})


class BentoClient:
    """A user's handle for dealing with Bento boxes."""

    def __init__(self, tor_client: TorClient,
                 ias: Optional[IntelAttestationService] = None,
                 rng: Optional[DeterministicRandom] = None,
                 reuse_circuits: bool = False) -> None:
        self.tor = tor_client
        self.sim = tor_client.sim
        self.ias = ias
        self.rng = rng or tor_client.sim.rng.fork(
            f"bentoclient:{tor_client.node.name}")
        # Opt-in circuit pooling: keep one live circuit per box and open
        # new streams on it instead of paying a fresh three-hop build
        # (three ntor handshakes) per session.  Off by default — pooling
        # changes the event schedule, and fixed-seed reproductions of the
        # one-circuit-per-session flow must stay bit-identical.
        self.reuse_circuits = reuse_circuits
        self._circuit_pool: dict[str, Circuit] = {}

    # -- discovery ----------------------------------------------------------

    def discover_boxes(self) -> list[RelayDescriptor]:
        """Bento boxes advertised in the (verified) consensus."""
        return [router for router in self.tor.consensus().routers
                if router.bento_port is not None]

    def pick_box(self, exclude: tuple[str, ...] = ()) -> RelayDescriptor:
        """A uniformly random Bento box ("chooses one at random", §3)."""
        boxes = [b for b in self.discover_boxes()
                 if b.identity_fp not in exclude]
        if not boxes:
            raise BentoError("no Bento boxes in the consensus")
        return self.rng.choice(boxes)

    def pick_box_by_slack(self, exclude: tuple[str, ...] = ()) -> RelayDescriptor:
        """The box advertising the most serving-plane slack.

        Consults the directory's load-report side-table and picks
        greedily: non-shedding boxes first, then most free admission
        slots, then shortest queue.  Boxes that have never advertised
        rank first (nothing known against them).  Falls back to the
        uniform :meth:`pick_box` draw when *no* box has advertised — that
        path consumes the same RNG draw as before, so fixed-seed runs on
        plane-less networks replay bit-identically.
        """
        boxes = [b for b in self.discover_boxes()
                 if b.identity_fp not in exclude]
        if not boxes:
            raise BentoError("no Bento boxes in the consensus")
        load_table = self.tor.directory.load_table()
        if not load_table:
            return self.rng.choice(boxes)
        from repro.qos.placement import pick_box_by_slack

        return pick_box_by_slack(boxes, load_table)

    # -- connection -------------------------------------------------------------

    @blocking
    def connect(self, thread: Actor, box: RelayDescriptor,
                circuit: Optional[Circuit] = None,
                timeout: float = 240.0) -> "BentoSession":
        """Open a session over Tor: circuit ending at the box, stream to
        its Bento port via the localhost exception."""
        own_circuit = circuit is None
        if circuit is None and self.reuse_circuits:
            pooled = self._circuit_pool.get(box.identity_fp)
            if pooled is not None and not pooled.destroyed:
                _HIT_CIRCUIT.value += 1
                try:
                    stream = yield from pooled.open_stream(
                        thread, box.address, box.bento_port, timeout=timeout)
                except RETRYABLE_ERRORS:
                    # The pooled circuit died under us; evict and fall
                    # through to a fresh build.
                    self._circuit_pool.pop(box.identity_fp, None)
                else:
                    # Pooled circuits are owned by the pool, not the
                    # session: close() drops only the stream.
                    return BentoSession(self, FramedStream(stream), pooled,
                                        close_circuit=False, box=box)
            else:
                _MISS_CIRCUIT.value += 1
        if circuit is None:
            circuit = yield from self.tor.build_circuit(thread, final_hop=box,
                                                        timeout=timeout)
            if self.reuse_circuits:
                self._circuit_pool[box.identity_fp] = circuit
                own_circuit = False
        stream = yield from circuit.open_stream(thread, box.address,
                                                box.bento_port,
                                                timeout=timeout)
        return BentoSession(self, FramedStream(stream), circuit,
                            close_circuit=own_circuit, box=box)

    @blocking
    def connect_direct(self, thread: Actor, box: RelayDescriptor,
                       timeout: float = 120.0) -> "BentoSession":
        """A session over a *direct* connection (no Tor circuit).

        For operators managing their own infrastructure — e.g. a
        LoadBalancer pushing content to its replicas, the way the paper's
        deployment copied files between its own EC2 instances.  Offers no
        anonymity toward the box; never use it for someone else's box.
        """
        from repro.netsim.bytestream import DirectByteStream

        conn = yield from self.tor.network.connect_blocking(
            thread, self.tor.node, box.address, box.bento_port,
            timeout=timeout)
        framed = FramedStream(DirectByteStream(conn, self.tor.node))
        return BentoSession(self, framed, circuit=None, close_circuit=False,
                            box=box)

    @blocking
    def connect_via_onion(self, thread: Actor, onion_address: str,
                          timeout: float = 240.0) -> "BentoSession":
        """Reach a Bento server that runs as a hidden service."""
        circuit = yield from self.tor.connect_to_hidden_service(
            thread, onion_address, timeout=timeout)
        stream = yield from circuit.open_stream(thread, "", 0, timeout=timeout)
        return BentoSession(self, FramedStream(stream), circuit,
                            close_circuit=True, box=None)

    # -- retry ------------------------------------------------------------------

    @blocking
    def retrying(self, thread: Actor, op, *, attempts: int = 5,
                 backoff_s: float = 1.0, max_backoff_s: float = 30.0,
                 session: Optional["BentoSession"] = None):
        """Run ``op()`` with seeded exponential-backoff retry.

        Retries on :data:`RETRYABLE_ERRORS` with a backoff of
        ``backoff_s * 2**attempt`` jittered by this client's deterministic
        RNG.  A :class:`ServerBusy` refusal carrying a ``retry_after``
        hint overrides the exponential schedule: the box quoted exactly
        how long to stay away (scaled to its queue depth), so the client
        sleeps that instead.  If ``session`` is given, each retry first
        reconnects and reattaches it (see :meth:`BentoSession.reconnect`);
        a reconnect failure consumes the attempt and backs off again.
        """
        last: Optional[BaseException] = None
        for attempt in range(attempts):
            if attempt > 0:
                _perf.retries += 1
                _metrics.counter("client_retries").value += 1
                log = _obs.log
                if log is not None:
                    log.instant("core.retry", self.sim.now,
                                track=self.tor.node.name, attempt=attempt,
                                error=type(last).__name__ if last else "")
                if isinstance(last, ServerBusy) and last.retry_after > 0:
                    yield Sleep(last.retry_after)
                else:
                    delay = min(backoff_s * (2 ** (attempt - 1)), max_backoff_s)
                    yield Sleep(delay * (0.5 + self.rng.random()))
                if session is not None:
                    try:
                        if isinstance(last, FunctionMoved) and last.box_fp:
                            # The box told us where the function went:
                            # chase it instead of hammering the tombstone.
                            session.retarget(last.box_fp)
                        yield from session.reconnect(thread)
                    except RETRYABLE_ERRORS as exc:
                        last = exc
                        continue
            try:
                # ``op`` may be a plain callable (legacy style) or one that
                # returns a blocking generator to delegate to.
                result = op()
                if isinstance(result, GeneratorType):
                    result = yield from result
                return result
            except RETRYABLE_ERRORS as exc:
                last = exc
        raise BentoError(
            f"operation failed after {attempts} attempts: {last}") from last


class BentoSession:
    """One client's connection to one Bento box."""

    def __init__(self, client: BentoClient, framed: FramedStream,
                 circuit: Optional[Circuit], close_circuit: bool,
                 box: Optional[RelayDescriptor]) -> None:
        self.client = client
        self.framed = framed
        self.circuit = circuit
        self.box = box
        self._close_circuit = close_circuit
        self.invocation_token: Optional[str] = None
        self.shutdown_token: Optional[str] = None
        self.image_name: Optional[str] = None
        self.channel: Optional[SecureChannel] = None
        self._client_pub: Optional[bytes] = None
        self.report: Optional[AttestationReport] = None
        self._pending: list[dict] = []     # out-of-order frames

    # -- low-level framing ------------------------------------------------

    @blocking
    def _request(self, thread: Actor, frame: bytes, expect: str,
                 timeout: float) -> dict:
        self.framed.send_frame(frame)
        return (yield from self.await_message(thread, expect, timeout))

    @blocking
    def await_message(self, thread: Actor, expect: str,
                      timeout: float = 600.0) -> dict:
        """Block until the server sends a message of type ``expect``.

        Frames of other types arriving first are queued (out-of-order
        delivery is normal: a long-running function may emit OUTPUT frames
        while the client waits for DONE) and served to later calls.
        Raises :class:`BentoError` on a server ERROR frame or when the
        server closes the connection.
        """
        for index, queued in enumerate(self._pending):
            if queued["type"] == expect:
                return self._pending.pop(index)
        while True:
            raw = yield from self.framed.recv_frame(thread, timeout=timeout)
            if raw is None:
                raise BentoError("Bento server closed the connection")
            message = messages.decode_message(raw)
            if message["type"] == expect:
                return message
            if message["type"] == messages.ERROR:
                raise self._error_from(message)
            self._pending.append(message)

    @staticmethod
    def _error_from(message: dict) -> BentoError:
        """Map an ERROR frame to the richest exception type it encodes.

        Serving-plane refusals come back typed — :class:`ServerBusy`
        keeps its ``retry_after``, :class:`PuzzleRequired` its challenge
        — so callers (and :meth:`BentoClient.retrying`) can act on the
        structure.  Both subclass :class:`BentoError`, so code that only
        knows the old contract still catches them.
        """
        reason = message.get("reason")
        detail = message.get("detail", "")
        text = f"server error: {reason} ({detail})"
        if reason == "server-busy":
            return ServerBusy(text,
                              retry_after=float(message.get("retry_after", 0.0)))
        if reason == "puzzle-required":
            try:
                challenge = bytes.fromhex(str(message.get("challenge", "")))
            except ValueError:
                challenge = b""
            return PuzzleRequired(text, challenge=challenge,
                                  difficulty=int(message.get("difficulty", 0)))
        if reason == "moved":
            return FunctionMoved(text,
                                 box_fp=str(message.get("box_fp", "")))
        return BentoError(text)

    # Backward-compatible private alias for await_message.
    _await = await_message

    # -- protocol steps -----------------------------------------------------------

    @blocking
    def query_policy(self, thread: Actor,
                     timeout: float = 120.0) -> MiddleboxNodePolicy:
        """Fetch the box's middlebox node policy (§5.5)."""
        reply = yield from self._request(
            thread, messages.encode_message(messages.POLICY_QUERY),
            messages.POLICY, timeout)
        return MiddleboxNodePolicy.from_wire(reply["policy"])

    @blocking
    def request_image(self, thread: Actor, image: str = "python",
                      verify: str = "stapled",
                      timeout: float = 240.0,
                      priority: Optional[str] = None,
                      solve_puzzles: bool = True) -> None:
        """Provision a container; attest it if it is the enclave image.

        ``verify`` is ``"stapled"`` (trust the server-fetched IAS report),
        ``"ias"`` (submit the quote to the IAS ourselves — one more WAN
        round trip but uncorrelated with the later function upload), or
        ``"none"`` (explicitly skip verification).

        ``priority`` (``"interactive"``/``"bulk"``) rides along for the
        box's admission queue; the default None omits the field entirely,
        keeping pre-serving-plane wire bytes.  A box shedding load may
        answer with a proof-of-work demand; ``solve_puzzles`` makes this
        client solve it and resubmit (up to three rounds) instead of
        surfacing :class:`PuzzleRequired`.
        """
        fields: dict[str, Any] = {"image": image}
        if priority is not None:
            fields["priority"] = priority
        for puzzle_round in range(3):
            try:
                reply = yield from self._request(
                    thread,
                    messages.encode_message(messages.REQUEST_IMAGE, **fields),
                    messages.IMAGE_READY, timeout)
                break
            except PuzzleRequired as exc:
                if not solve_puzzles or puzzle_round == 2:
                    raise
                from repro.functions.ddos_defense import solve_pow

                fields["pow_challenge"] = exc.challenge.hex()
                fields["pow_nonce"] = solve_pow(exc.challenge, exc.difficulty)
        self.invocation_token = reply["invocation"]
        self.shutdown_token = reply["shutdown"]
        self.image_name = reply["image"]

        if image_by_name(image).uses_enclave:
            expected = known_measurement(image)
            if verify == "none":
                report = AttestationReport.from_wire(reply["report"])
            elif verify == "stapled":
                report = AttestationReport.from_wire(reply["report"])
                if self.client.ias is None:
                    raise AttestationRejected("no IAS key to verify against")
                if not report.verify(self.client.ias.public_key,
                                     expected_measurement=expected):
                    raise AttestationRejected("stapled report failed verification")
            elif verify == "ias":
                if self.client.ias is None:
                    raise AttestationRejected("no IAS to verify with")
                quote = Quote.from_wire(reply["quote"])
                report = yield from self.client.ias.verify_quote_blocking(
                    thread, quote)
                if not report.verify(self.client.ias.public_key,
                                     expected_measurement=expected):
                    raise AttestationRejected("IAS report failed verification")
            else:
                raise ValueError(f"unknown verify mode: {verify}")
            self.report = report
            if verify != "none":
                self.channel, self._client_pub = Conclave.client_channel(
                    self.client.rng, report, self.client.ias.public_key,
                    expected)

    @blocking
    def load_function(self, thread: Actor, code: str,
                      manifest: FunctionManifest,
                      data: Optional[dict[str, bytes]] = None,
                      timeout: float = 240.0) -> None:
        """Upload the function (sealed end-to-end when attested)."""
        if self.invocation_token is None:
            raise BentoError("request_image must succeed before load_function")
        fields: dict[str, Any] = {
            "token": self.invocation_token,
            "manifest": manifest.to_wire(),
        }
        if self.channel is not None:
            fields["sealed_code"] = self.channel.seal(code.encode("utf-8"))
            fields["client_pub"] = self._client_pub
        else:
            fields["code"] = code
        if data:
            fields["data"] = dict(data)
        yield from self._request(
            thread, messages.encode_message(messages.LOAD_FUNCTION, **fields),
            messages.LOADED, timeout)

    @blocking
    def attach(self, thread: Actor, invocation_token: str,
               timeout: float = 120.0) -> None:
        """Adopt a shared invocation token on a fresh session (§5.3:
        "a client [can] share the invocation token ... with other users")."""
        self.invocation_token = invocation_token
        yield from self._request(thread, messages.encode_message(
            messages.ATTACH, token=invocation_token),
            messages.LOADED, timeout)

    @blocking
    def invoke(self, thread: Actor, args: list,
               timeout: float = 600.0) -> Any:
        """Run the function and wait for its return value.

        Outputs the function emits before returning are queued and remain
        readable via :meth:`next_output`.
        """
        self.framed.send_frame(messages.encode_message(
            messages.INVOKE, token=self.invocation_token, args=list(args)))
        done = yield from self.await_message(thread, messages.DONE, timeout)
        return done["result"]

    def invoke_nowait(self, args: Optional[list] = None) -> None:
        """Fire an invocation without waiting (for long-running functions)."""
        self.framed.send_frame(messages.encode_message(
            messages.INVOKE, token=self.invocation_token,
            args=list(args or [])))

    def send_message(self, payload: bytes) -> None:
        """An in-band message to the (running) function — api.recv() feed."""
        self.framed.send_frame(messages.encode_message(
            messages.MSG, token=self.invocation_token, payload=bytes(payload)))

    @blocking
    def next_output(self, thread: Actor, timeout: float = 600.0) -> bytes:
        """The next api.send() payload from the function."""
        reply = yield from self.await_message(thread, messages.OUTPUT, timeout)
        return reply["payload"]

    @blocking
    def reconnect(self, thread: Actor, timeout: float = 240.0,
                  circuit_attempts: int = 3) -> None:
        """Re-establish the transport and reattach via the invocation token.

        The function instance on the box survives a dropped client
        connection (§5.3 fate-shares with the *box*), so after a circuit
        or link failure the session can come back: build a fresh circuit
        to the same box — avoiding relays implicated in recent failures —
        open a new stream, and ATTACH with the held invocation token.
        Direct (no-Tor) sessions simply redial the box.
        """
        if self.box is None:
            raise BentoError("cannot reconnect an onion session")
        if self.invocation_token is None:
            raise BentoError("no invocation token to reattach with")
        try:
            self.framed.close()
        except Exception:
            pass
        if (self._close_circuit and self.circuit is not None
                and not self.circuit.destroyed):
            self.circuit.close()
        self._pending.clear()
        if self.circuit is None:
            # Direct session (connect_direct): redial the box.
            from repro.netsim.bytestream import DirectByteStream

            conn = yield from self.client.tor.network.connect_blocking(
                thread, self.client.tor.node, self.box.address,
                self.box.bento_port, timeout=timeout)
            self.framed = FramedStream(DirectByteStream(conn, self.client.tor.node))
        else:
            circuit = yield from self.client.tor.build_circuit_with_retry(
                thread, attempts=circuit_attempts, final_hop=self.box,
                timeout=timeout)
            stream = yield from circuit.open_stream(
                thread, self.box.address, self.box.bento_port,
                timeout=timeout)
            self.circuit = circuit
            self._close_circuit = True
            self.framed = FramedStream(stream)
        yield from self.attach(thread, self.invocation_token,
                               timeout=timeout)
        _perf.session_reconnects += 1
        _metrics.counter("session_reconnects").value += 1
        log = _obs.log
        if log is not None:
            log.instant("core.session_reconnect", self.client.sim.now,
                        track=self.client.tor.node.name,
                        box=self.box.nickname)

    def retarget(self, box_fp: str) -> None:
        """Repoint this session at another box (after a migration).

        The next :meth:`reconnect` dials the new box and reattaches with
        the held invocation token — which the destination adopted during
        the drain, so the capability keeps working unmodified.
        """
        for router in self.client.tor.consensus().routers:
            if (router.identity_fp == box_fp
                    and router.bento_port is not None):
                self.box = router
                self._pending.clear()
                log = _obs.log
                if log is not None:
                    log.instant("core.session_retarget", self.client.sim.now,
                                track=self.client.tor.node.name,
                                box=router.nickname)
                return
        raise BentoError(f"moved-to box {box_fp} not in the consensus")

    @blocking
    def checkpoint_function(self, thread: Actor, seq: int = 0,
                            timeout: float = 240.0) -> dict:
        """Snapshot the function's migratable state (owner-only).

        Returns the checkpoint's wire dict.  On an attested session the
        server seals the reply under the secure channel, so the state
        never transits (or rests) in host-visible plaintext.
        """
        if self.shutdown_token is None:
            raise BentoError("no shutdown token held to checkpoint with")
        reply = yield from self._request(thread, messages.encode_message(
            messages.CHECKPOINT, token=self.shutdown_token, seq=int(seq)),
            messages.CHECKPOINT_DATA, timeout)
        if "sealed_checkpoint" in reply:
            if self.channel is None:
                raise BentoError("sealed checkpoint on an unattested session")
            from repro.util.serialization import canonical_decode

            return canonical_decode(self.channel.open(
                reply["sealed_checkpoint"]))
        return reply["checkpoint"]

    @blocking
    def restore_function(self, thread: Actor, checkpoint: Optional[dict],
                         start: bool = False,
                         adopt_invocation: Optional[str] = None,
                         adopt_shutdown: Optional[str] = None,
                         timeout: float = 240.0) -> dict:
        """Apply a checkpoint to the function loaded on this session.

        ``checkpoint`` is the wire dict from :meth:`checkpoint_function`
        (or None to promote previously staged state).  ``start=True``
        (re)starts the entry with the checkpointed args.  The ``adopt_*``
        tokens re-key the destination instance under the source's
        capabilities, so existing holders follow the function across the
        move; this session's own tokens are updated to match.
        """
        if self.invocation_token is None:
            raise BentoError("load_function must succeed before restore")
        fields: dict[str, Any] = {"token": self.invocation_token,
                                  "start": bool(start)}
        if checkpoint is not None:
            if self.channel is not None:
                from repro.util.serialization import canonical_encode

                fields["sealed_checkpoint"] = self.channel.seal(
                    canonical_encode(checkpoint))
            else:
                fields["checkpoint"] = dict(checkpoint)
        if adopt_invocation:
            fields["adopt_invocation"] = adopt_invocation
        if adopt_shutdown:
            fields["adopt_shutdown"] = adopt_shutdown
        reply = yield from self._request(thread, messages.encode_message(
            messages.RESTORE, **fields), messages.RESTORED, timeout)
        self.invocation_token = reply.get("invocation", self.invocation_token)
        self.shutdown_token = reply.get("shutdown", self.shutdown_token)
        return reply

    @blocking
    def shutdown(self, thread: Actor, timeout: float = 120.0) -> None:
        """Spend the shutdown token; the container is reclaimed."""
        if self.shutdown_token is None:
            raise BentoError("no shutdown token held")
        yield from self._request(thread, messages.encode_message(
            messages.SHUTDOWN, token=self.shutdown_token),
            messages.SHUTDOWN_OK, timeout)

    def drop_transport(self) -> None:
        """Abandon the stream after an ambiguous failure.

        When a read times out, the reply may still be in flight — the
        next read on this stream could return the *previous* op's frame
        and silently cross replies.  Closing the transport discards
        anything in flight (queued out-of-order frames included); the
        session stays attached, and the next operation's retry path
        reconnects with a clean stream.
        """
        try:
            self.framed.close()
        except Exception:
            pass
        self._pending.clear()

    def close(self) -> None:
        """Drop the transport (the function keeps running; §5.3
        fate-sharing is with the *box*, not this connection)."""
        self.framed.close()
        if (self._close_circuit and self.circuit is not None
                and not self.circuit.destroyed):
            self.circuit.close()
