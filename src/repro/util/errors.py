"""Base exception hierarchy for the whole reproduction.

Every package defines its own exceptions derived from :class:`ReproError`
so callers can catch "anything this library raises" with one except clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class ProtocolError(ReproError):
    """A peer sent a message that violates the protocol state machine."""
