"""Canonical binary encoding for structured values.

Wire messages, manifests and attestation reports need a *canonical* byte
representation so they can be hashed, signed, and compared.  JSON is not
canonical (dict ordering, float formatting) and pickle is unsafe, so this
module implements a small, self-describing, deterministic tag-length-value
encoding for the JSON-ish data model: ``None``, ``bool``, ``int``, ``float``,
``str``, ``bytes``, ``list`` and ``dict`` (string keys, encoded sorted).
"""

from __future__ import annotations

import struct
from typing import Any

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_FLOAT = b"D"
_TAG_STR = b"S"
_TAG_BYTES = b"B"
_TAG_LIST = b"L"
_TAG_DICT = b"M"


class SerializationError(ValueError):
    """Raised when a value cannot be encoded, or bytes cannot be decoded."""


def canonical_encode(value: Any) -> bytes:
    """Encode ``value`` into canonical bytes.

    Equal values always encode to equal bytes, so the output is safe to
    hash or sign.  Raises :class:`SerializationError` for unsupported types
    (including non-string dict keys and NaN floats, which break equality).
    """
    out = bytearray()
    _encode_into(value, out)
    return bytes(out)


def canonical_decode(data: bytes) -> Any:
    """Decode bytes produced by :func:`canonical_encode`."""
    value, offset = _decode_from(data, 0)
    if offset != len(data):
        raise SerializationError(f"{len(data) - offset} trailing bytes after value")
    return value


def _encode_into(value: Any, out: bytearray) -> None:
    if value is None:
        out += _TAG_NONE
    elif value is True:
        out += _TAG_TRUE
    elif value is False:
        out += _TAG_FALSE
    elif isinstance(value, int):
        encoded = str(value).encode("ascii")
        out += _TAG_INT + struct.pack(">I", len(encoded)) + encoded
    elif isinstance(value, float):
        if value != value:  # NaN never equals itself; signing it is a trap
            raise SerializationError("cannot canonically encode NaN")
        out += _TAG_FLOAT + struct.pack(">d", value)
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        out += _TAG_STR + struct.pack(">I", len(encoded)) + encoded
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        out += _TAG_BYTES + struct.pack(">I", len(raw)) + raw
    elif isinstance(value, (list, tuple)):
        out += _TAG_LIST + struct.pack(">I", len(value))
        for item in value:
            _encode_into(item, out)
    elif isinstance(value, dict):
        keys = list(value.keys())
        for key in keys:
            if not isinstance(key, str):
                raise SerializationError(f"dict keys must be str, got {type(key).__name__}")
        out += _TAG_DICT + struct.pack(">I", len(keys))
        for key in sorted(keys):
            _encode_into(key, out)
            _encode_into(value[key], out)
    else:
        raise SerializationError(f"unsupported type: {type(value).__name__}")


def _read(data: bytes, offset: int, count: int) -> bytes:
    end = offset + count
    if end > len(data):
        raise SerializationError("truncated input")
    return data[offset:end]


def _decode_from(data: bytes, offset: int) -> tuple[Any, int]:
    tag = _read(data, offset, 1)
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_INT:
        (length,) = struct.unpack(">I", _read(data, offset, 4))
        offset += 4
        raw = _read(data, offset, length)
        try:
            return int(raw.decode("ascii")), offset + length
        except ValueError as exc:
            raise SerializationError("malformed integer") from exc
    if tag == _TAG_FLOAT:
        (value,) = struct.unpack(">d", _read(data, offset, 8))
        return value, offset + 8
    if tag == _TAG_STR:
        (length,) = struct.unpack(">I", _read(data, offset, 4))
        offset += 4
        raw = _read(data, offset, length)
        return raw.decode("utf-8"), offset + length
    if tag == _TAG_BYTES:
        (length,) = struct.unpack(">I", _read(data, offset, 4))
        offset += 4
        return bytes(_read(data, offset, length)), offset + length
    if tag == _TAG_LIST:
        (count,) = struct.unpack(">I", _read(data, offset, 4))
        offset += 4
        items = []
        for _ in range(count):
            item, offset = _decode_from(data, offset)
            items.append(item)
        return items, offset
    if tag == _TAG_DICT:
        (count,) = struct.unpack(">I", _read(data, offset, 4))
        offset += 4
        result: dict[str, Any] = {}
        for _ in range(count):
            key, offset = _decode_from(data, offset)
            if not isinstance(key, str):
                raise SerializationError("dict key must decode to str")
            value, offset = _decode_from(data, offset)
            result[key] = value
        return result, offset
    raise SerializationError(f"unknown tag: {tag!r}")
