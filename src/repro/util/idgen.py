"""Deterministic identifier generation.

Real systems use ``os.urandom`` for identifiers; a deterministic simulator
cannot, or runs stop being reproducible.  :class:`IdGenerator` produces
unique, unpredictable-looking identifiers from a seeded PRNG so every
simulation replay produces the same ids.
"""

from __future__ import annotations

import hashlib
import itertools


class IdGenerator:
    """Produce unique hex identifiers deterministically from a seed."""

    def __init__(self, seed: str = "repro") -> None:
        self._seed = seed
        self._counter = itertools.count()

    def next_hex(self, nbytes: int = 16) -> str:
        """Return the next identifier as a hex string of ``2 * nbytes`` chars."""
        return self.next_bytes(nbytes).hex()

    def next_bytes(self, nbytes: int = 16) -> bytes:
        """Return the next identifier as raw bytes."""
        counter = next(self._counter)
        material = f"{self._seed}:{counter}".encode()
        out = b""
        block = 0
        while len(out) < nbytes:
            out += hashlib.sha256(material + block.to_bytes(4, "big")).digest()
            block += 1
        return out[:nbytes]

    def next_int(self, lo: int = 0, hi: int = 2**31) -> int:
        """Return the next identifier as an integer in ``[lo, hi)``."""
        if hi <= lo:
            raise ValueError("next_int requires hi > lo")
        span = hi - lo
        return lo + int.from_bytes(self.next_bytes(8), "big") % span


_GLOBAL = IdGenerator("repro-global")


def token_hex(nbytes: int = 16) -> str:
    """Module-level convenience mirroring ``secrets.token_hex``.

    Deterministic across runs; use an :class:`IdGenerator` instance when a
    component needs its own id-space.
    """
    return _GLOBAL.next_hex(nbytes)
