"""Byte-string helpers used throughout the crypto and wire layers."""

from __future__ import annotations

from typing import Iterator


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """Return the byte-wise XOR of two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError(f"xor_bytes length mismatch: {len(a)} != {len(b)}")
    # int XOR is ~50x faster than a per-byte loop for cell-sized buffers.
    return (int.from_bytes(a, "big") ^ int.from_bytes(b, "big")).to_bytes(len(a), "big")


def int_to_bytes(value: int, length: int | None = None) -> bytes:
    """Encode a non-negative integer big-endian.

    When ``length`` is omitted the minimal number of bytes is used
    (at least one, so ``0`` encodes as ``b"\\x00"``).
    """
    if value < 0:
        raise ValueError("int_to_bytes requires a non-negative integer")
    if length is None:
        length = max(1, (value.bit_length() + 7) // 8)
    return value.to_bytes(length, "big")


def int_from_bytes(data: bytes) -> int:
    """Decode a big-endian unsigned integer."""
    return int.from_bytes(data, "big")


def chunk_bytes(data: bytes, size: int) -> Iterator[bytes]:
    """Yield consecutive chunks of ``data``, each at most ``size`` bytes.

    The final chunk may be shorter.  ``size`` must be positive.
    """
    if size <= 0:
        raise ValueError("chunk size must be positive")
    for offset in range(0, len(data), size):
        yield data[offset:offset + size]


def pad_to_multiple(data: bytes, multiple: int, filler: bytes = b"\x00") -> bytes:
    """Pad ``data`` with ``filler`` bytes up to the next multiple of ``multiple``.

    Data whose length is already an exact multiple is returned unchanged.
    ``filler`` must be a single byte.
    """
    if multiple <= 0:
        raise ValueError("pad multiple must be positive")
    if len(filler) != 1:
        raise ValueError("filler must be a single byte")
    remainder = len(data) % multiple
    if remainder == 0:
        return data
    return data + filler * (multiple - remainder)
