"""Seeded randomness for simulations.

Every stochastic choice in the simulator flows through a
:class:`DeterministicRandom` so experiments are exactly reproducible.
"""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

T = TypeVar("T")


class DeterministicRandom:
    """A thin, explicit wrapper around :class:`random.Random`.

    Provides the handful of operations the simulator needs, plus
    :meth:`fork` for handing independent-but-reproducible streams to
    sub-components.
    """

    def __init__(self, seed: int | str = 0) -> None:
        self.seed = seed
        self._random = random.Random(repr(seed))

    def fork(self, label: str) -> "DeterministicRandom":
        """Return an independent RNG derived from this one's seed and a label."""
        return DeterministicRandom(f"{self.seed}/{label}")

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def uniform(self, lo: float, hi: float) -> float:
        """Uniform float in [lo, hi]."""
        return self._random.uniform(lo, hi)

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi] inclusive."""
        return self._random.randint(lo, hi)

    def randbytes(self, n: int) -> bytes:
        """n uniformly random bytes."""
        return self._random.randbytes(n)

    def getrandbits(self, n: int) -> int:
        """A uniformly random integer with ``n`` random bits."""
        return self._random.getrandbits(n)

    def choice(self, seq: Sequence[T]) -> T:
        """One uniformly random element of a non-empty sequence."""
        return self._random.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> list[T]:
        """k distinct elements sampled without replacement."""
        return self._random.sample(seq, k)

    def shuffle(self, items: list) -> None:
        """Shuffle a list in place."""
        self._random.shuffle(items)

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """One element drawn with probability proportional to its weight."""
        if len(items) != len(weights):
            raise ValueError("items and weights must have equal length")
        if not items:
            raise ValueError("weighted_choice on empty sequence")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        point = self._random.random() * total
        cumulative = 0.0
        for item, weight in zip(items, weights):
            cumulative += weight
            if point < cumulative:
                return item
        return items[-1]

    def expovariate(self, rate: float) -> float:
        """Exponentially distributed float with the given rate."""
        return self._random.expovariate(rate)

    def gauss(self, mu: float, sigma: float) -> float:
        """Normally distributed float."""
        return self._random.gauss(mu, sigma)
