"""Small shared utilities: errors, ids, byte helpers, RNG, serialization."""

from repro.util.errors import ReproError
from repro.util.idgen import IdGenerator, token_hex
from repro.util.bytesutil import (
    chunk_bytes,
    int_from_bytes,
    int_to_bytes,
    pad_to_multiple,
    xor_bytes,
)
from repro.util.rng import DeterministicRandom
from repro.util.serialization import canonical_encode, canonical_decode

__all__ = [
    "ReproError",
    "IdGenerator",
    "token_hex",
    "chunk_bytes",
    "int_from_bytes",
    "int_to_bytes",
    "pad_to_multiple",
    "xor_bytes",
    "DeterministicRandom",
    "canonical_encode",
    "canonical_decode",
]
