"""HKDF (RFC 5869) over HMAC-SHA256.

Used to derive per-hop forward/backward cipher and digest keys from the
DH shared secret during circuit construction, and FS-Protect file keys
from an enclave's ephemeral root key.
"""

from __future__ import annotations

import hashlib
import hmac

_HASH_LEN = 32


def hkdf_extract(salt: bytes, ikm: bytes) -> bytes:
    """Extract a pseudorandom key from input keying material."""
    if not salt:
        salt = b"\x00" * _HASH_LEN
    return hmac.new(salt, ikm, hashlib.sha256).digest()


def hkdf_expand(prk: bytes, info: bytes, length: int) -> bytes:
    """Expand a pseudorandom key into ``length`` output bytes."""
    if length <= 0:
        raise ValueError("hkdf_expand length must be positive")
    if length > 255 * _HASH_LEN:
        raise ValueError("hkdf_expand length too large")
    output = b""
    block = b""
    counter = 1
    while len(output) < length:
        block = hmac.new(prk, block + info + bytes([counter]), hashlib.sha256).digest()
        output += block
        counter += 1
    return output[:length]


def hkdf(ikm: bytes, salt: bytes = b"", info: bytes = b"", length: int = 32) -> bytes:
    """One-shot extract-then-expand."""
    return hkdf_expand(hkdf_extract(salt, ikm), info, length)
