"""Finite-field Diffie-Hellman (RFC 3526 group 14).

Stands in for the Curve25519 exchange in Tor's ntor handshake.  Exponents
are drawn from a :class:`~repro.util.rng.DeterministicRandom` so circuit
construction is reproducible run to run.
"""

from __future__ import annotations

from repro.util.bytesutil import int_from_bytes, int_to_bytes
from repro.util.rng import DeterministicRandom

# RFC 3526, 2048-bit MODP group (group 14); generator 2.
DH_GROUP_MODP_2048 = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)
# RFC 2409, 1024-bit MODP group (group 2); generator 2.  The default for
# the simulation: half the wire size of group 14, so handshake payloads fit
# in single Tor cells the way Curve25519 onionskins do.  A sizing knob, not
# a security recommendation (DESIGN.md §2).
DH_GROUP_MODP_1024 = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381FFFFFFFFFFFFFFFF",
    16,
)
_GENERATOR = 2
_EXPONENT_BITS = 256  # short exponents are standard practice for these groups


class DiffieHellman:
    """One party's ephemeral DH state."""

    def __init__(self, rng: DeterministicRandom, modulus: int = DH_GROUP_MODP_1024) -> None:
        self._modulus = modulus
        # Force the top bit so the exponent always has full length.
        self._private = rng.getrandbits(_EXPONENT_BITS) | (1 << (_EXPONENT_BITS - 1))
        self.public = pow(_GENERATOR, self._private, modulus)

    @property
    def public_bytes(self) -> bytes:
        """The public value encoded big-endian at full group width."""
        return int_to_bytes(self.public, (self._modulus.bit_length() + 7) // 8)

    def shared_secret(self, peer_public: int | bytes) -> bytes:
        """Compute the shared secret with a peer's public value."""
        if isinstance(peer_public, (bytes, bytearray)):
            peer_public = int_from_bytes(bytes(peer_public))
        if not 2 <= peer_public <= self._modulus - 2:
            raise ValueError("peer public value out of range")
        secret = pow(peer_public, self._private, self._modulus)
        return int_to_bytes(secret, (self._modulus.bit_length() + 7) // 8)
