"""A SHA-256 counter-mode stream cipher.

Stands in for AES-CTR in the circuit onion layers and FS Protect.  The
keystream is ``SHA256(key || nonce || counter)`` blocks; like AES-CTR it is
a stateful XOR stream, so encrypt and decrypt are the same operation and
each (key, nonce) pair must never be reused for independent messages.

Keystream blocks are generated in batches into a single buffer consumed by
an offset cursor; repeated small reads (one 509-byte cell at a time) no
longer pay one ``hashlib`` round trip per 32-byte block plus quadratic
byte-string concatenation.  The emitted keystream is byte-for-byte
identical to generating block by block.
"""

from __future__ import annotations

import hashlib

from repro.perf.counters import counters as _perf

_BLOCK = 32
# Blocks generated per refill: 4 KiB of keystream, enough for eight relay
# cells per hashlib batch while keeping tiny ciphers cheap.
_BATCH_BLOCKS = 128

_sha256 = hashlib.sha256


class StreamCipher:
    """Stateful XOR stream cipher.

    Two endpoints construct a :class:`StreamCipher` with the same key and
    nonce and stay synchronised by processing the same byte sequence, just
    like the per-hop AES-CTR state in a real Tor circuit.
    """

    __slots__ = ("_prefix", "_counter", "_buf", "_pos")

    def __init__(self, key: bytes, nonce: bytes = b"") -> None:
        if len(key) < 16:
            raise ValueError("stream cipher key must be at least 16 bytes")
        self._prefix = _sha256(b"stream:" + key + b":" + nonce).digest()
        self._counter = 0
        self._buf = b""
        self._pos = 0

    def _extend(self, need: int) -> None:
        """Grow the buffer so at least ``need`` unread bytes are available."""
        blocks = max(_BATCH_BLOCKS, -(-need // _BLOCK))
        prefix = self._prefix
        counter = self._counter
        chunks = [
            _sha256(prefix + c.to_bytes(8, "big")).digest()
            for c in range(counter, counter + blocks)
        ]
        self._counter = counter + blocks
        unread = self._buf[self._pos:]
        self._buf = unread + b"".join(chunks) if unread else b"".join(chunks)
        self._pos = 0
        _perf.hash_calls += blocks
        _perf.keystream_bytes += blocks * _BLOCK

    def keystream(self, n: int) -> bytes:
        """Return the next ``n`` keystream bytes, advancing the state."""
        pos = self._pos
        if len(self._buf) - pos < n:
            self._extend(n)
            pos = 0
        end = pos + n
        self._pos = end
        return self._buf[pos:end]

    def process(self, data: bytes) -> bytes:
        """Encrypt or decrypt ``data`` (XOR with the next keystream bytes)."""
        n = len(data)
        if not n:
            return b""
        ks = self.keystream(n)
        return (int.from_bytes(data, "big") ^ int.from_bytes(ks, "big")).to_bytes(n, "big")

    def process_many(self, messages: list[bytes]) -> list[bytes]:
        """Process consecutive messages with one keystream pull and one XOR.

        Equivalent to ``[self.process(m) for m in messages]`` — the
        keystream is consumed in the same order — but the whole batch costs
        a single big-int XOR, which is what makes multi-cell relay
        forwarding cheap.
        """
        if len(messages) < 2:
            return [self.process(m) for m in messages]
        data = b"".join(messages)
        n = len(data)
        if not n:
            return [b"" for _ in messages]
        ks = self.keystream(n)
        out = (int.from_bytes(data, "big") ^ int.from_bytes(ks, "big")).to_bytes(n, "big")
        result = []
        offset = 0
        for message in messages:
            end = offset + len(message)
            result.append(out[offset:end])
            offset = end
        return result


def stream_xor(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """One-shot encryption/decryption with a fresh cipher state."""
    return StreamCipher(key, nonce).process(data)
