"""A SHA-256 counter-mode stream cipher.

Stands in for AES-CTR in the circuit onion layers and FS Protect.  The
keystream is ``SHA256(key || nonce || counter)`` blocks; like AES-CTR it is
a stateful XOR stream, so encrypt and decrypt are the same operation and
each (key, nonce) pair must never be reused for independent messages.
"""

from __future__ import annotations

import hashlib

_BLOCK = 32


class StreamCipher:
    """Stateful XOR stream cipher.

    Two endpoints construct a :class:`StreamCipher` with the same key and
    nonce and stay synchronised by processing the same byte sequence, just
    like the per-hop AES-CTR state in a real Tor circuit.
    """

    def __init__(self, key: bytes, nonce: bytes = b"") -> None:
        if len(key) < 16:
            raise ValueError("stream cipher key must be at least 16 bytes")
        self._prefix = hashlib.sha256(b"stream:" + key + b":" + nonce).digest()
        self._counter = 0
        self._buffer = b""

    def _refill(self) -> None:
        block = hashlib.sha256(
            self._prefix + self._counter.to_bytes(8, "big")
        ).digest()
        self._counter += 1
        self._buffer += block

    def keystream(self, n: int) -> bytes:
        """Return the next ``n`` keystream bytes, advancing the state."""
        while len(self._buffer) < n:
            self._refill()
        out, self._buffer = self._buffer[:n], self._buffer[n:]
        return out

    def process(self, data: bytes) -> bytes:
        """Encrypt or decrypt ``data`` (XOR with the next keystream bytes)."""
        ks = self.keystream(len(data))
        n = len(data)
        return (int.from_bytes(data, "big") ^ int.from_bytes(ks, "big")).to_bytes(n, "big") if n else b""


def stream_xor(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """One-shot encryption/decryption with a fresh cipher state."""
    return StreamCipher(key, nonce).process(data)
