"""Pure-Python RSA: keygen (Miller-Rabin), PKCS#1-style hash signatures,
raw encryption, and Chaum blind signatures.

Used for relay identity keys, directory consensus signatures, the simulated
Intel Attestation Service's report signatures, and the blinded
invocation/shutdown tokens that the paper sketches in §5.3 footnote 3.

Key sizes default to 512 bits so a simulation can mint hundreds of relay
identities quickly; this is a simulation knob, not a security
recommendation (see DESIGN.md §2).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

from repro.util.bytesutil import int_from_bytes, int_to_bytes
from repro.util.rng import DeterministicRandom

_E = 65537
_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
]


class RsaError(ValueError):
    """Raised on malformed keys, bad signatures, or out-of-range messages."""


def _is_probable_prime(n: int, rng: DeterministicRandom, rounds: int = 24) -> bool:
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randint(2, n - 2)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _generate_prime(bits: int, rng: DeterministicRandom) -> int:
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if math.gcd(candidate - 1, _E) != 1:
            continue
        if _is_probable_prime(candidate, rng):
            return candidate


def _digest_to_int(message: bytes, modulus: int) -> int:
    """Full-domain-style hash of ``message`` reduced into the modulus range."""
    nbytes = (modulus.bit_length() + 7) // 8
    out = b""
    counter = 0
    while len(out) < nbytes:
        out += hashlib.sha256(
            b"rsa-fdh:" + counter.to_bytes(4, "big") + message
        ).digest()
        counter += 1
    return int_from_bytes(out[:nbytes]) % modulus


@dataclass(frozen=True)
class RsaPublicKey:
    """An RSA public key ``(n, e)``."""

    n: int
    e: int = _E

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Check a hash-and-sign signature over ``message``."""
        try:
            sig_int = int_from_bytes(signature)
        except Exception:  # pragma: no cover - defensive
            return False
        if not 0 <= sig_int < self.n:
            return False
        return pow(sig_int, self.e, self.n) == _digest_to_int(message, self.n)

    def encrypt_int(self, m: int) -> int:
        """Raw RSA encryption of an integer already in range."""
        if not 0 <= m < self.n:
            raise RsaError("message out of range")
        return pow(m, self.e, self.n)

    def blind(self, message: bytes, rng: DeterministicRandom) -> tuple[int, int]:
        """Blind ``message`` for a Chaum blind signature.

        Returns ``(blinded, unblinder)``; send ``blinded`` to the signer and
        keep ``unblinder`` secret for :meth:`unblind`.
        """
        m = _digest_to_int(message, self.n)
        while True:
            r = rng.randint(2, self.n - 2)
            if math.gcd(r, self.n) == 1:
                break
        blinded = (m * pow(r, self.e, self.n)) % self.n
        return blinded, r

    def unblind(self, blind_signature: int, unblinder: int) -> bytes:
        """Strip the blinding factor from the signer's response."""
        r_inv = pow(unblinder, -1, self.n)
        sig = (blind_signature * r_inv) % self.n
        return int_to_bytes(sig, (self.n.bit_length() + 7) // 8)

    def fingerprint(self) -> str:
        """A short stable identifier for this key."""
        material = int_to_bytes(self.n) + int_to_bytes(self.e)
        return hashlib.sha256(material).hexdigest()[:40]


class RsaKeyPair:
    """An RSA key pair with signing, decryption, and blind signing."""

    def __init__(self, n: int, e: int, d: int) -> None:
        self.public = RsaPublicKey(n=n, e=e)
        self._d = d

    @classmethod
    def generate(cls, rng: DeterministicRandom, bits: int = 512) -> "RsaKeyPair":
        """Generate a key pair deterministically from ``rng``."""
        if bits < 128:
            raise RsaError("key size too small even for simulation")
        half = bits // 2
        while True:
            p = _generate_prime(half, rng)
            q = _generate_prime(bits - half, rng)
            if p == q:
                continue
            n = p * q
            phi = (p - 1) * (q - 1)
            if math.gcd(_E, phi) != 1:
                continue
            d = pow(_E, -1, phi)
            return cls(n=n, e=_E, d=d)

    def export_parts(self) -> dict:
        """The full key material as plain ints (for replica cloning —
        §8.2: "copies all files (including the hostname and private key)
        to the new instance")."""
        return {"n": self.public.n, "e": self.public.e, "d": self._d}

    @classmethod
    def from_parts(cls, parts: dict) -> "RsaKeyPair":
        """Reconstruct a key pair exported with :meth:`export_parts`."""
        return cls(n=int(parts["n"]), e=int(parts["e"]), d=int(parts["d"]))

    def sign(self, message: bytes) -> bytes:
        """Hash-and-sign ``message``."""
        m = _digest_to_int(message, self.public.n)
        sig = pow(m, self._d, self.public.n)
        return int_to_bytes(sig, (self.public.n.bit_length() + 7) // 8)

    def decrypt_int(self, c: int) -> int:
        """Raw RSA decryption of an integer in range."""
        if not 0 <= c < self.public.n:
            raise RsaError("ciphertext out of range")
        return pow(c, self._d, self.public.n)

    def blind_sign(self, blinded: int) -> int:
        """Sign a blinded value without learning the underlying message."""
        if not 0 <= blinded < self.public.n:
            raise RsaError("blinded message out of range")
        return pow(blinded, self._d, self.public.n)
