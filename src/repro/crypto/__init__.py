"""Pure-Python cryptographic primitives for the Tor and enclave substrates.

Real Tor uses AES-CTR, Curve25519 and RSA via OpenSSL.  This reproduction
runs offline with the standard library only, so it substitutes:

* AES-CTR            -> a SHA-256 counter-mode stream cipher (:mod:`.stream`)
* Curve25519 (ntor)  -> classic finite-field Diffie-Hellman (:mod:`.dh`)
* OpenSSL RSA        -> pure-Python RSA with Miller-Rabin keygen (:mod:`.rsa`)

Each substitute provides the same *interface properties* the protocols rely
on (keyed indistinguishability, shared-secret agreement, unforgeable-without
-key signatures) while remaining deterministic and dependency-free.  None of
this is production cryptography; it exists to make the protocol logic real.
"""

from repro.crypto.kdf import hkdf_expand, hkdf_extract, hkdf
from repro.crypto.stream import StreamCipher, stream_xor
from repro.crypto.aead import AeadKey, AeadError
from repro.crypto.dh import DiffieHellman, DH_GROUP_MODP_1024, DH_GROUP_MODP_2048
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, RsaError

__all__ = [
    "hkdf",
    "hkdf_extract",
    "hkdf_expand",
    "StreamCipher",
    "stream_xor",
    "AeadKey",
    "AeadError",
    "DiffieHellman",
    "DH_GROUP_MODP_1024",
    "DH_GROUP_MODP_2048",
    "RsaKeyPair",
    "RsaPublicKey",
    "RsaError",
]
