"""Authenticated encryption (encrypt-then-MAC) over the stream cipher.

Used wherever the paper needs confidentiality *and* integrity: the TLS-like
channel between a Bento client and the function loader inside the enclave,
FS Protect file contents, and sealed enclave state.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.crypto.kdf import hkdf
from repro.crypto.stream import stream_xor

_MAC_LEN = 32
_NONCE_LEN = 16


class AeadError(ValueError):
    """Raised when decryption fails authentication."""


class AeadKey:
    """An encrypt-then-MAC AEAD key with explicit nonces.

    The caller supplies a unique nonce per message (the wire layers use a
    message counter; FS Protect uses the file path and version).
    """

    def __init__(self, key_material: bytes) -> None:
        if len(key_material) < 16:
            raise ValueError("AEAD key material must be at least 16 bytes")
        self._enc_key = hkdf(key_material, info=b"aead-enc", length=32)
        self._mac_key = hkdf(key_material, info=b"aead-mac", length=32)

    def seal(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt and authenticate; returns ciphertext || tag."""
        if len(nonce) > 255:
            raise ValueError("nonce too long")
        ciphertext = stream_xor(self._enc_key, nonce, plaintext)
        tag = self._tag(nonce, ciphertext, aad)
        return ciphertext + tag

    def open(self, nonce: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
        """Verify and decrypt; raises :class:`AeadError` on any tampering."""
        if len(sealed) < _MAC_LEN:
            raise AeadError("sealed message too short")
        ciphertext, tag = sealed[:-_MAC_LEN], sealed[-_MAC_LEN:]
        expected = self._tag(nonce, ciphertext, aad)
        if not hmac.compare_digest(tag, expected):
            raise AeadError("authentication failed")
        return stream_xor(self._enc_key, nonce, ciphertext)

    def _tag(self, nonce: bytes, ciphertext: bytes, aad: bytes) -> bytes:
        mac = hmac.new(self._mac_key, digestmod=hashlib.sha256)
        mac.update(len(nonce).to_bytes(1, "big"))
        mac.update(nonce)
        mac.update(len(aad).to_bytes(8, "big"))
        mac.update(aad)
        mac.update(ciphertext)
        return mac.digest()
