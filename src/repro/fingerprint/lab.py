"""Trace collection: the §7.3 experiment harness.

A :class:`FingerprintLab` hosts the synthetic corpus on a Tor test
network and records, per visit, exactly what the paper's adversary sees —
every packet on the client<->guard link — under three conditions:

* ``"none"``     -- unmodified Tor: circuit to an exit, crawl the page,
* ``"browser"``  -- the Browser function with a chosen padding size,
* a caller-provided visit callable for custom defenses (ablations).

Each visit uses a fresh client node (fresh guard link, fresh circuit),
mirroring one browser session per capture in the paper's setup.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.client import BentoClient
from repro.core.server import BentoServer
from repro.enclave.attestation import IntelAttestationService
from repro.fingerprint.websites import SiteSpec, build_corpus
from repro.functions.browser import BrowserFunction
from repro.netsim.bytestream import FramedStream
from repro.netsim.http import fetch
from repro.netsim.simulator import Join, blocking
from repro.netsim.trace import PacketRecord, TraceRecorder
from repro.tor.testnet import TorTestNetwork


PARALLEL_STREAMS = 6    # a browser's typical per-host connection pool


@blocking
def standard_tor_visit(thread, client, hostname: str,
                       parallel: int = PARALLEL_STREAMS,
                       circuit=None) -> int:
    """A browser-like page load through Tor: fetch the index, then pull
    subresources over up to ``parallel`` concurrent streams on the same
    circuit.  Returns the number of resources fetched."""
    if circuit is None:
        circuit = yield from client.build_circuit(thread,
                                                  exit_to=(hostname, 443))
    stream = yield from client.open_stream(thread, circuit, hostname, 443)
    framed = FramedStream(stream)
    index = yield from fetch(thread, framed, "/", url=f"https://{hostname}/")
    paths = [line.strip()
             for line in index.body.decode("latin-1", "replace").splitlines()
             if line.strip().startswith("/")]
    framed.close()

    queue = list(paths)

    def worker(worker_thread):
        """One parallel fetch worker (a browser connection-pool slot)."""
        worker_stream = yield from circuit.open_stream(worker_thread,
                                                       hostname, 443)
        worker_framed = FramedStream(worker_stream)
        while queue:
            path = queue.pop(0)
            yield from fetch(worker_thread, worker_framed, path,
                             url=f"https://{hostname}{path}")
        worker_framed.close()

    workers = [client.sim.spawn(worker, name=f"fetch-worker{i}")
               for i in range(min(parallel, max(1, len(paths))))]
    for worker_thread in workers:
        yield Join(worker_thread)
    circuit.close()
    return 1 + len(paths)


@dataclass
class TraceSample:
    """One labelled capture."""

    site: int
    defense: str
    padding: int
    records: list[PacketRecord]
    elapsed: float


class FingerprintLab:
    """Corpus + network + collection in one object."""

    def __init__(self, n_sites: int = 100, n_relays: int = 15,
                 seed: int | str = "fplab", fast_crypto: bool = True,
                 bento_fraction: float = 0.3,
                 browser_image: str = "python",
                 min_total: int = 30 * 1024,
                 max_total: int = 1_500 * 1024) -> None:
        self.corpus: list[SiteSpec] = build_corpus(
            n_sites, seed=f"{seed}-corpus",
            min_total=min_total, max_total=max_total)
        self.net = TorTestNetwork(n_relays=n_relays, seed=seed,
                                  fast_crypto=fast_crypto,
                                  bento_fraction=bento_fraction)
        self.browser_image = browser_image
        self.ias = IntelAttestationService(self.net.sim.rng.fork("ias"))
        self.servers = [BentoServer(relay, self.net.authority, ias=self.ias)
                        for relay in self.net.bento_boxes()]
        body_rng = self.net.sim.rng.fork("bodies")
        for site in self.corpus:
            self.net.create_web_server(
                site.hostname, site.resources(body_rng.fork(site.hostname)))
        self._visit_counter = 0

    # -- visit implementations ------------------------------------------------

    def _visit_standard(self, thread, client, site: SiteSpec):
        """Unmodified Tor: crawl the page through a fresh circuit."""
        yield from standard_tor_visit(thread, client, site.hostname)

    def _visit_browser(self, thread, client, site: SiteSpec,
                       padding: int):
        """The defense: install and run Browser on a Bento box (Figure 1)."""
        bento = BentoClient(client, ias=self.ias)
        session = yield from bento.connect(thread, bento.pick_box())
        yield from session.request_image(thread, self.browser_image)
        yield from session.load_function(
            thread, BrowserFunction.SOURCE,
            BrowserFunction.manifest(image=self.browser_image))
        yield from BrowserFunction.fetch(thread, session,
                                         f"https://{site.hostname}/", padding)
        yield from session.shutdown(thread)
        session.close()

    # -- collection ----------------------------------------------------------------

    def collect(self, defense: str = "none", visits_per_site: int = 10,
                padding: int = 0,
                site_indices: Optional[list[int]] = None,
                visit_fn: Optional[Callable] = None) -> list[TraceSample]:
        """Capture ``visits_per_site`` labelled traces per site.

        Returns samples in (visit-round, site) order.  ``visit_fn`` (taking
        ``(thread, tor_client, site)``) overrides the built-in behaviors
        for custom-defense ablations.
        """
        if site_indices is None:
            site_indices = [site.index for site in self.corpus]
        samples: list[TraceSample] = []
        for visit_round in range(visits_per_site):
            for site_index in site_indices:
                site = self.corpus[site_index]
                samples.append(self._one_visit(site, defense, padding,
                                               visit_round, visit_fn))
        return samples

    def _one_visit(self, site: SiteSpec, defense: str, padding: int,
                   visit_round: int,
                   visit_fn: Optional[Callable]) -> TraceSample:
        self._visit_counter += 1
        client = self.net.create_client(
            f"fp{self._visit_counter}-s{site.index}v{visit_round}")
        recorder = TraceRecorder(client.node)
        started = self.net.sim.now

        if visit_fn is not None and not inspect.isgeneratorfunction(visit_fn):
            # Legacy plain-callable visit_fn (custom ablations): run it on
            # a deprecated sim-thread so its blocking calls still drive.
            def _run(thread):
                visit_fn(thread, client, site)
        else:
            def _run(thread):
                if visit_fn is not None:
                    yield from visit_fn(thread, client, site)
                elif defense == "none":
                    yield from self._visit_standard(thread, client, site)
                elif defense == "browser":
                    yield from self._visit_browser(thread, client, site,
                                                   padding)
                else:
                    raise ValueError(f"unknown defense: {defense}")

        visit_thread = self.net.sim.spawn(_run, name=f"visit{self._visit_counter}")
        self.net.sim.run_until_done(visit_thread)
        return TraceSample(site=site.index, defense=defense, padding=padding,
                           records=recorder.cut(),
                           elapsed=self.net.sim.now - started)

    # -- dataset helpers --------------------------------------------------------------

    @staticmethod
    def dataset(samples: list[TraceSample]):
        """Samples -> (features X, labels y) numpy pair."""
        import numpy as np

        from repro.fingerprint.features import features_matrix

        X = features_matrix([sample.records for sample in samples])
        y = np.array([sample.site for sample in samples])
        return X, y
