"""Client-side padding defenses to compare against Browser (§7.1).

The paper positions Browser against the classical defense family:
"Typical defenses involve reordering or batching requests and sending
junk control packets to make websites appear indistinguishable from
traffic patterns alone", and notes Tor's own "preliminary mechanisms ...
to introduce dummy traffic".  This module implements that comparator —
a WTF-PAD-flavored client that injects RELAY_DROP padding cells into the
idle gaps of an otherwise ordinary visit — so the ablation bench can put
Browser's offload approach side by side with in-band padding.
"""

from __future__ import annotations

from repro.fingerprint.lab import standard_tor_visit
from repro.netsim.simulator import Actor, Join, Sleep, blocking


@blocking
def padded_tor_visit(thread: Actor, client, hostname: str,
                     pad_rate_cells_per_s: float = 50.0,
                     trailer_s: float = 3.0) -> None:
    """A page load with adaptive-style cover cells on the same circuit.

    A padding pump injects RELAY_DROP cells addressed to the *middle* hop
    at a constant rate for the duration of the visit plus a trailer, so
    the client<->guard link shows near-constant cell traffic instead of
    the page's request/response bursts.  (Gap-filling at a fixed rate is
    the spirit of WTF-PAD's adaptive padding without its histogram
    machinery.)
    """
    circuit = yield from client.build_circuit(thread, exit_to=(hostname, 443))
    state = {"running": True}
    interval = 1.0 / pad_rate_cells_per_s

    def pump(pump_thread):
        while state["running"] and not circuit.destroyed:
            # 'echo' asks the middle relay to send a padding cell back,
            # covering the download direction too (like Tor's negotiated
            # padding machines).
            client.send_drop(circuit, hop_index=1, payload=b"echo")
            yield Sleep(interval)

    pump_thread = client.sim.spawn(pump, name="pad-pump")
    try:
        yield from standard_tor_visit(thread, client, hostname,
                                      circuit=circuit)
        yield Sleep(trailer_s)      # keep padding past the page tail
    finally:
        state["running"] = False
        yield Join(pump_thread)
        if not circuit.destroyed:
            circuit.close()


def make_padded_visit(pad_rate_cells_per_s: float = 50.0,
                      trailer_s: float = 3.0):
    """A ``visit_fn`` for :meth:`FingerprintLab.collect` with fixed knobs."""
    def visit(thread, client, site):
        """One padded visit (lab visit_fn signature)."""
        yield from padded_tor_visit(thread, client, site.hostname,
                                    pad_rate_cells_per_s=pad_rate_cells_per_s,
                                    trailer_s=trailer_s)
    return visit
