"""A synthetic corpus standing in for the Alexa-100 sites (§7.3).

Each site gets a deterministic set of resources: an index page listing
subresource paths (the format the Browser function and the standard-Tor
client both crawl) plus the resources themselves.  Sizes follow a
log-normal-ish distribution calibrated to web-page-size studies (median
page weight around 1-2 MB spread over a handful to dozens of resources).
Bodies are pseudorandom (incompressible), so compression in the Browser
pipeline behaves like it does on real (already-compressed) web media.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.util.rng import DeterministicRandom

KB = 1024


@dataclass
class SiteSpec:
    """One synthetic website."""

    index: int
    hostname: str
    resource_sizes: list[int] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        """Total page weight across all resources."""
        return sum(self.resource_sizes)

    @property
    def index_page(self) -> bytes:
        """The crawlable index listing every subresource path."""
        lines = [f"<!-- site {self.index} -->"]
        lines += [f"/r{j}" for j in range(len(self.resource_sizes) - 1)]
        return "\n".join(lines).encode()

    def resources(self, rng: DeterministicRandom) -> dict[str, bytes]:
        """Materialize paths -> bodies (index page + pseudorandom blobs)."""
        bodies: dict[str, bytes] = {}
        padding = max(0, self.resource_sizes[0] - len(self.index_page))
        bodies["/"] = self.index_page + rng.randbytes(padding)
        for j, size in enumerate(self.resource_sizes[1:]):
            bodies[f"/r{j}"] = rng.randbytes(size)
        return bodies


def build_corpus(n_sites: int = 100, seed: int | str = "corpus",
                 min_total: int = 40 * KB,
                 max_total: int = 4_000 * KB) -> list[SiteSpec]:
    """Generate ``n_sites`` deterministic site specifications.

    Totals are log-normal (clipped to ``[min_total, max_total]``) around a
    median a third of the way up the range — real page weights cluster,
    which is what makes *total size alone* an ambiguous fingerprint while
    per-resource patterns stay distinctive.  Resource counts grow with
    page weight (big pages have many subresources).
    """
    rng = DeterministicRandom(seed)
    median = math.exp(math.log(min_total)
                      + (math.log(max_total) - math.log(min_total)) / 3.0)
    sites: list[SiteSpec] = []
    for index in range(n_sites):
        site_rng = rng.fork(f"site{index}")
        log_total = site_rng.gauss(math.log(median), 0.8)
        total = int(max(min_total, min(max_total, math.exp(log_total))))
        n_resources = max(2, int(2 + (total / max_total) * 28
                                 + site_rng.uniform(0, 6)))
        # Split the total across resources with random proportions.
        cuts = sorted(site_rng.random() for _ in range(n_resources - 1))
        fractions = []
        last = 0.0
        for cut in cuts + [1.0]:
            fractions.append(cut - last)
            last = cut
        sizes = [max(2 * KB, int(total * fraction)) for fraction in fractions]
        sites.append(SiteSpec(index=index, hostname=f"site{index}.web",
                              resource_sizes=sizes))
    return sites
