"""Trace features: the CUMUL representation plus summary statistics.

CUMUL (Panchenko et al.) interpolates the cumulative sum of signed packet
sizes at fixed positions — a compact curve that captures both volume and
the request/response interleaving pattern that fingerprinting attacks
exploit.  We append totals, counts, and duration, which are the features
padding defenses most directly target.
"""

from __future__ import annotations

import numpy as np

from repro.netsim.trace import INCOMING, PacketRecord

N_CUMUL_POINTS = 100


def extract_features(records: list[PacketRecord],
                     n_points: int = N_CUMUL_POINTS) -> np.ndarray:
    """One trace -> one feature vector of ``n_points + 5`` floats."""
    if not records:
        return np.zeros(n_points + 5, dtype=np.float64)
    signed = np.array([r.direction * r.size for r in records], dtype=np.float64)
    cumulative = np.cumsum(signed)
    positions = np.linspace(0, len(cumulative) - 1, n_points)
    curve = np.interp(positions, np.arange(len(cumulative)), cumulative)

    sizes = np.array([r.size for r in records], dtype=np.float64)
    directions = np.array([r.direction for r in records])
    times = np.array([r.time for r in records])
    total_in = float(sizes[directions == INCOMING].sum())
    total_out = float(sizes[directions != INCOMING].sum())
    count_in = float((directions == INCOMING).sum())
    count_out = float((directions != INCOMING).sum())
    duration = float(times.max() - times.min())
    summary = np.array([total_in, total_out, count_in, count_out, duration])
    return np.concatenate([curve, summary])


def features_matrix(traces: list[list[PacketRecord]],
                    n_points: int = N_CUMUL_POINTS) -> np.ndarray:
    """Stack per-trace feature vectors into an (n, d) matrix."""
    return np.vstack([extract_features(records, n_points=n_points)
                      for records in traces])
