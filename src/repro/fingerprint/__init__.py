"""The website-fingerprinting evaluation (§7.3, Table 1).

The paper records "all Tor traffic between the client and its guard
relay" for visits to 100 popular sites and attacks the traces with Deep
Fingerprinting [73].  This package reproduces the pipeline:

* :mod:`~repro.fingerprint.websites` -- a synthetic 100-site corpus with
  realistic page/resource size distributions, served in the simulator,
* :mod:`~repro.fingerprint.lab` -- trace collection at the client-guard
  vantage point, with or without the Browser defense,
* :mod:`~repro.fingerprint.features` -- CUMUL-style trace features,
* :mod:`~repro.fingerprint.classifier` -- numpy classifiers (k-NN and a
  softmax head) standing in for the DF CNN (see DESIGN.md §2: the
  defense's effect dominates the classifier choice).
"""

from repro.fingerprint.websites import SiteSpec, build_corpus
from repro.fingerprint.features import extract_features, features_matrix
from repro.fingerprint.classifier import (
    KnnClassifier,
    SoftmaxClassifier,
    confusion_matrix,
    evaluate_open_world,
    evaluate_split,
)
from repro.fingerprint.lab import FingerprintLab, TraceSample
from repro.fingerprint.defenses import make_padded_visit, padded_tor_visit

__all__ = [
    "SiteSpec",
    "build_corpus",
    "extract_features",
    "features_matrix",
    "KnnClassifier",
    "SoftmaxClassifier",
    "confusion_matrix",
    "evaluate_open_world",
    "evaluate_split",
    "FingerprintLab",
    "TraceSample",
    "make_padded_visit",
    "padded_tor_visit",
]
