"""Closed-world website classifiers (the Deep Fingerprinting stand-in).

Two numpy models sharing a fit/predict interface:

* :class:`KnnClassifier` -- standardized k-nearest-neighbours; strong on
  these traces and fully deterministic (the default attacker).
* :class:`SoftmaxClassifier` -- a one-layer softmax trained by gradient
  descent; the closest dependency-free relative of the DF CNN's final
  layer.

Both consume the CUMUL feature vectors from
:mod:`repro.fingerprint.features`.  DESIGN.md §2 explains why a classical
attacker suffices: the Browser defense collapses the traffic *shape*, so
its effect shows up in any competent classifier.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import DeterministicRandom


class _Standardizer:
    """Per-feature z-scoring fitted on the training set."""

    def fit(self, X: np.ndarray) -> None:
        """Train on (X, y); returns self."""
        self.mean = X.mean(axis=0)
        self.std = X.std(axis=0)
        self.std[self.std < 1e-12] = 1.0

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Apply the fitted scaling."""
        return (X - self.mean) / self.std


class KnnClassifier:
    """k-NN over standardized features (Euclidean)."""

    def __init__(self, k: int = 3) -> None:
        self.k = k
        self._scaler = _Standardizer()

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KnnClassifier":
        """Train on (X, y); returns self."""
        self._scaler.fit(X)
        self._X = self._scaler.transform(X)
        self._y = np.asarray(y)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted labels for each row of X."""
        Xs = self._scaler.transform(np.atleast_2d(X))
        # Pairwise squared distances without materializing the difference
        # tensor: |a-b|^2 = |a|^2 + |b|^2 - 2ab.
        d2 = (np.square(Xs).sum(axis=1)[:, None]
              + np.square(self._X).sum(axis=1)[None, :]
              - 2.0 * Xs @ self._X.T)
        k = min(self.k, len(self._y))
        nearest = np.argpartition(d2, k - 1, axis=1)[:, :k]
        votes = self._y[nearest]
        out = np.empty(len(Xs), dtype=self._y.dtype)
        for i, row in enumerate(votes):
            values, counts = np.unique(row, return_counts=True)
            out[i] = values[np.argmax(counts)]
        return out


class SoftmaxClassifier:
    """One-layer softmax regression with L2, full-batch gradient descent."""

    def __init__(self, epochs: int = 300, learning_rate: float = 0.5,
                 l2: float = 1e-4, seed: int = 0) -> None:
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.l2 = l2
        self.seed = seed
        self._scaler = _Standardizer()

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SoftmaxClassifier":
        """Train on (X, y); returns self."""
        self._scaler.fit(X)
        Xs = self._scaler.transform(X)
        self.classes_, y_index = np.unique(y, return_inverse=True)
        n, d = Xs.shape
        c = len(self.classes_)
        rng = np.random.default_rng(self.seed)
        self.W = rng.normal(0, 0.01, size=(d, c))
        self.b = np.zeros(c)
        onehot = np.zeros((n, c))
        onehot[np.arange(n), y_index] = 1.0
        for _ in range(self.epochs):
            logits = Xs @ self.W + self.b
            logits -= logits.max(axis=1, keepdims=True)
            expl = np.exp(logits)
            probs = expl / expl.sum(axis=1, keepdims=True)
            grad = (probs - onehot) / n
            self.W -= self.learning_rate * (Xs.T @ grad + self.l2 * self.W)
            self.b -= self.learning_rate * grad.sum(axis=0)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted labels for each row of X."""
        Xs = self._scaler.transform(np.atleast_2d(X))
        logits = Xs @ self.W + self.b
        return self.classes_[np.argmax(logits, axis=1)]


def confusion_matrix(classifier, X: np.ndarray, y: np.ndarray,
                     train_fraction: float = 0.7,
                     seed: int | str = "split") -> tuple[np.ndarray, np.ndarray]:
    """Stratified split -> (labels, counts) confusion matrix.

    ``counts[i, j]`` is the number of test traces of site ``labels[i]``
    predicted as site ``labels[j]`` — the per-site view behind the
    aggregate accuracy (which sites a defense actually protects).
    """
    X = np.asarray(X)
    y = np.asarray(y)
    train_idx, test_idx = _stratified_indices(y, train_fraction, seed)
    classifier.fit(X[train_idx], y[train_idx])
    predictions = classifier.predict(X[test_idx])
    labels = np.unique(y)
    index_of = {label: i for i, label in enumerate(labels)}
    counts = np.zeros((len(labels), len(labels)), dtype=np.int64)
    for truth, predicted in zip(y[test_idx], predictions):
        counts[index_of[truth], index_of[predicted]] += 1
    return labels, counts


def evaluate_open_world(classifier, X: np.ndarray, y: np.ndarray,
                        monitored: set, threshold_frac: float = 0.5,
                        train_fraction: float = 0.7,
                        seed: int | str = "ow-split") -> dict:
    """Open-world evaluation: the attacker monitors a subset of sites.

    Unmonitored traces are labelled as a single background class for
    training; returns true/false-positive rates for "visited a monitored
    site" plus the closed-world accuracy on monitored traffic.  This is
    the evaluation regime most WF papers report alongside Table-1-style
    closed-world numbers.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    background = -1
    collapsed = np.where(np.isin(y, sorted(monitored)), y, background)
    train_idx, test_idx = _stratified_indices(collapsed, train_fraction, seed)
    classifier.fit(X[train_idx], collapsed[train_idx])
    predictions = classifier.predict(X[test_idx])
    truth = collapsed[test_idx]
    monitored_mask = truth != background
    flagged = predictions != background
    tpr = (float(np.mean(flagged[monitored_mask]))
           if monitored_mask.any() else 0.0)
    fpr = (float(np.mean(flagged[~monitored_mask]))
           if (~monitored_mask).any() else 0.0)
    correct_site = predictions[monitored_mask] == truth[monitored_mask]
    return {"tpr": tpr, "fpr": fpr,
            "monitored_accuracy": (float(np.mean(correct_site))
                                   if monitored_mask.any() else 0.0)}


def _stratified_indices(y: np.ndarray, train_fraction: float,
                        seed: int | str) -> tuple[list[int], list[int]]:
    rng = DeterministicRandom(seed)
    train_idx: list[int] = []
    test_idx: list[int] = []
    for label in np.unique(y):
        indices = list(np.nonzero(y == label)[0])
        rng.shuffle(indices)
        n_train = max(1, int(round(len(indices) * train_fraction)))
        train_idx += indices[:n_train]
        test_idx += indices[n_train:]
    if not test_idx:
        raise ValueError("no test samples; need >1 visit per site")
    return train_idx, test_idx


def evaluate_split(classifier, X: np.ndarray, y: np.ndarray,
                   train_fraction: float = 0.7,
                   seed: int | str = "split") -> float:
    """Stratified train/test split -> test accuracy.

    Every class contributes at least one training sample; classes with a
    single sample go to training only (they cannot be tested fairly).
    """
    X = np.asarray(X)
    y = np.asarray(y)
    train_idx, test_idx = _stratified_indices(y, train_fraction, seed)
    classifier.fit(X[train_idx], y[train_idx])
    predictions = classifier.predict(X[test_idx])
    return float(np.mean(predictions == y[test_idx]))
